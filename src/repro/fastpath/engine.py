"""The whole-fabric slot engine: every switch fabric, one pass per slot.

:class:`FabricArrayEngine` registers many single-switch fabrics
(:class:`~repro.switch.fabric.VoqFabric`,
:class:`~repro.switch.fabric.FifoFabric`) and advances **all** of them
with one :meth:`step_all` call per cell slot, replacing S per-fabric
Python dispatches with a handful of array operations over stacked
state.  Two backends share one API:

- **numpy** (the default when numpy imports): fabrics whose
  configuration the vectorized match rounds support are *ingested* into
  stacked arrays -- queue rings ``(S, 16, 16, C)`` of arrival slots,
  ring heads/sizes, and per-slot request/column/union bitmask matrices
  derived from occupancy, the same bitmask state
  :class:`~repro.switch.fabric.VoqFabric` maintains incrementally.  PIM
  (fast and strict RNG), iSLIP, and FIFO match rounds then run as table
  lookups and einsums over the whole stack at once.
- **python** (numpy absent, or ``REPRO_FASTPATH_FORCE_PYTHON`` set, or
  ``backend="python"``): every fabric stays *scalar-resident* and
  :meth:`step_all` is a stacked loop over the fabrics' own ``step``.
  Same API, same results, no dependency.

**Bit-identical reproduction.**  The vectorized rounds consume each
fabric's *own* scheduler RNG in exactly the scalar draw order: grant
draws per contested output in ascending output order, then accept draws
per granted input in ascending input order, per iteration -- fast mode
draws ``rng.random()`` only for multi-contender picks, strict mode draws
``rng.randrange(k)`` for every pick, exactly as
:mod:`repro.core.matching.bitmask` does.  Metrics (latency samples in
delivery order, iterations-to-maximal tallies in slot order, per-pair
delivery counts, backlog slot counts) are accumulated in arrays and
flushed into each fabric's ordinary :class:`FabricMetrics` by
:meth:`sync`, byte-for-byte equal to a scalar run.  The conformance
oracle (:func:`repro.conform.oracle.fastpath_sweep`) proves this
continuously.

**Scalar fallback.**  Fabrics the vectorized rounds cannot express --
frame-schedule reservations (guaranteed traffic), attached tracers or
registry probes, bounded buffers, reference (non-bitmask) schedulers,
``n_ports > 16`` -- are registered *scalar-resident*: the engine steps
them through their own ``step`` inside the same :meth:`step_all` wave.
:meth:`pin_scalar` moves a vectorized fabric to the scalar path mid-run
(the fault-blast-radius hook) by writing its array state back into the
fabric; :meth:`unpin` re-ingests it.  Both directions preserve queue
contents, masks, metrics, and the RNG stream position exactly.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, List, Optional, Tuple

from repro.fastpath.backend import Tables, load_numpy

__all__ = ["FabricArrayEngine"]

_W = 16  # stacked port width: every mask fits the 16-bit tables
_POOL = 1024  # pre-drawn uniforms buffered per fabric row


def _mirror_rng(np, rng):
    """A numpy ``RandomState`` at exactly ``rng``'s MT19937 state.

    CPython's ``random.Random`` and numpy's legacy ``RandomState`` both
    run MT19937 and build doubles the same way
    (``(genrand() >> 5) * 2**26 + (genrand() >> 6)`` over ``2**53``), so
    the mirrored ``random_sample`` stream is bit-identical to repeated
    ``rng.random()`` calls.
    """
    internal = rng.getstate()[1]
    rs = np.random.RandomState()
    rs.set_state(
        ("MT19937", np.asarray(internal[:624], np.uint32), internal[624])
    )
    return rs


def _scheduler_kind(fabric) -> Optional[Tuple[str, bool]]:
    """(group kind, strict) when the scheduler is vectorizable, else None."""
    # Imported here so the engine stays importable without the switch
    # package being touched first (and to keep import cycles away).
    from repro.core.matching.bitmask import (
        BitmaskFifoScheduler,
        BitmaskIslip,
        BitmaskPim,
    )
    from repro.switch.fabric import FifoFabric, VoqFabric

    scheduler = fabric.scheduler
    if isinstance(fabric, VoqFabric):
        if type(scheduler) is BitmaskPim:
            return ("pim", scheduler.strict_rng)
        if type(scheduler) is BitmaskIslip:
            return ("islip", False)
        return None
    if isinstance(fabric, FifoFabric):
        if type(scheduler) is BitmaskFifoScheduler:
            return ("fifo", scheduler.strict_rng)
        return None
    return None


def _vectorizable(fabric) -> Optional[Tuple[str, bool]]:
    """Group key when this fabric can live in stacked arrays, else None.

    The exclusions are exactly the scalar-fallback triggers documented in
    DESIGN §13: frame schedules, tracers, probes (registry-owned or
    bounded tallies), buffer limits, wide fabrics, reference schedulers.
    """
    kind = _scheduler_kind(fabric)
    if kind is None:
        return None
    if fabric.n_ports > _W:
        return None
    if getattr(fabric, "frame_schedule", None):
        return None
    if getattr(fabric, "tracer", None) is not None:
        return None
    if getattr(fabric, "_probes", None) is not None:
        return None
    if getattr(fabric, "buffer_capacity", None) is not None:
        return None
    if getattr(fabric, "per_vc_capacity", None) is not None:
        return None
    metrics = fabric.metrics
    if metrics.latency.max_samples is not None:
        return None
    if metrics.iterations_to_maximal.max_samples is not None:
        return None
    if kind[0] in ("pim", "islip"):
        if fabric.scheduler.iterations > 127:
            return None
        if any(len(q) for qs in fabric.guaranteed_queues for q in qs.values()):
            return None
    return kind


class _Group:
    """One stacked array family: fabrics sharing a scheduler kind."""

    def __init__(self, engine: "FabricArrayEngine", kind: str, strict: bool):
        self.engine = engine
        self.kind = kind  # "pim" | "islip" | "fifo"
        self.strict = strict
        self.fabrics: List[Any] = []
        self.rngs: List[Any] = []  # scheduler.rng per row (None for islip)
        np = engine.np
        # Fast-mode (non-strict) draw batching: each row's Python RNG is
        # mirrored into a numpy MT19937 ``RandomState`` that emits the
        # bit-identical 53-bit double stream.  Draws are consumed from a
        # per-row pool; the lagging Python object is re-synchronized at
        # sync() by replaying exactly ``consumed`` values on a shadow
        # mirror (rows with no RNG, or strict rows, hold ``None``).
        self.np_rngs: List[Any] = []
        self.np_shadow: List[Any] = []
        self.pool = np.zeros((0, _POOL), np.float64)
        self.pool_pos = np.zeros(0, np.int64)
        self.consumed = np.zeros(0, np.int64)
        self.cap = 8
        self.n = np.zeros(0, np.int64)
        self.iters = np.zeros(0, np.int64)
        if kind == "fifo":
            self.qslot = np.zeros((0, _W, self.cap), np.int64)
            self.qout = np.zeros((0, _W, self.cap), np.int64)
            self.qhead = np.zeros((0, _W), np.int64)
            self.qsize = np.zeros((0, _W), np.int64)
        else:
            self.qdata = np.zeros((0, _W, _W, self.cap), np.int64)
            self.qhead = np.zeros((0, _W, _W), np.int64)
            self.qsize = np.zeros((0, _W, _W), np.int64)
            # Stacked column bitmasks, maintained incrementally on offer
            # and delivery -- the same invariant VoqFabric keeps per
            # fabric (cols[s, o] bit i set iff queue (i, o) of fabric s
            # is non-empty).  Row masks are never needed: the match
            # rounds select requests straight from the columns.
            self.cols = np.zeros((0, _W), np.int64)
            if kind == "islip":
                self.gptr = np.zeros((0, _W), np.int64)
                self.aptr = np.zeros((0, _W), np.int64)
        # Pending offers, flushed in arrival order at the next step/sync.
        self.po_s: List[int] = []
        self.po_i: List[int] = []
        self.po_o: List[int] = []
        self.po_slot: List[int] = []
        # Bulk offer chunks: (position in the per-cell stream when the
        # chunk arrived, row, input array, output array, slot).
        self.po_chunks: List[Tuple[int, int, Any, Any, int]] = []
        # Metric deltas since the last sync().
        self.d_slots = np.zeros(0, np.int64)
        self.d_offered = np.zeros(0, np.int64)
        self.d_delivered = np.zeros(0, np.int64)
        self.d_backlog = np.zeros(0, np.int64)
        self.pair_count = np.zeros((0, _W, _W), np.int64)
        # Latency samples (fabric row, waited), in delivery order.
        self.lat_s = np.zeros(256, np.int64)
        self.lat_w = np.zeros(256, np.int64)
        self.lat_len = 0
        # iterations_to_maximal per (stepped slot, fabric row); 0 = None.
        self.it_buf = np.zeros((256, 0), np.int8)
        self.it_len = 0

    @property
    def size(self) -> int:
        return len(self.fabrics)

    # -- row management -------------------------------------------------
    def _append_axis0(self, name: str, row) -> None:
        np = self.engine.np
        old = getattr(self, name)
        setattr(self, name, np.concatenate([old, row[None]], axis=0))

    def add_row(self, fabric) -> int:
        """Ingest ``fabric``'s live state as a new stacked row."""
        np = self.engine.np
        row = self.size
        self.fabrics.append(fabric)
        n = fabric.n_ports
        self.n = np.concatenate([self.n, np.array([n], np.int64)])
        iters = getattr(fabric.scheduler, "iterations", 1)
        self.iters = np.concatenate([self.iters, np.array([iters], np.int64)])
        if self.kind == "fifo":
            self.rngs.append(fabric.scheduler.rng)
            lengths = [len(q) for q in fabric.queues]
            self._ensure_cap(max(lengths) if lengths else 0)
            qslot = np.zeros((_W, self.cap), np.int64)
            qout = np.zeros((_W, self.cap), np.int64)
            qsize = np.zeros(_W, np.int64)
            for i, q in enumerate(fabric.queues):
                for j, (slot, out) in enumerate(q):
                    qslot[i, j] = slot
                    qout[i, j] = out
                qsize[i] = len(q)
            self._append_axis0("qslot", qslot)
            self._append_axis0("qout", qout)
            self._append_axis0("qhead", np.zeros(_W, np.int64))
            self._append_axis0("qsize", qsize)
        else:
            self.rngs.append(
                fabric.scheduler.rng if self.kind == "pim" else None
            )
            longest = max(
                (len(q) for qs in fabric.queues for q in qs.values()),
                default=0,
            )
            self._ensure_cap(longest)
            qdata = np.zeros((_W, _W, self.cap), np.int64)
            qsize = np.zeros((_W, _W), np.int64)
            for i, qs in enumerate(fabric.queues):
                for o, q in qs.items():
                    for j, slot in enumerate(q):
                        qdata[i, o, j] = slot
                    qsize[i, o] = len(q)
            self._append_axis0("qdata", qdata)
            self._append_axis0("qhead", np.zeros((_W, _W), np.int64))
            self._append_axis0("qsize", qsize)
            col_masks = np.zeros(_W, np.int64)
            col_masks[:n] = np.asarray(fabric.col_masks)
            self._append_axis0("cols", col_masks)
            if self.kind == "islip":
                gptr = np.zeros(_W, np.int64)
                aptr = np.zeros(_W, np.int64)
                gptr[:n] = np.asarray(fabric.scheduler.grant_pointers)
                aptr[:n] = np.asarray(fabric.scheduler.accept_pointers)
                self._append_axis0("gptr", gptr)
                self._append_axis0("aptr", aptr)
        rng = self.rngs[row]
        if rng is not None and not self.strict:
            self.np_rngs.append(_mirror_rng(np, rng))
            self.np_shadow.append(_mirror_rng(np, rng))
        else:
            self.np_rngs.append(None)
            self.np_shadow.append(None)
        self._append_axis0("pool", np.zeros(_POOL, np.float64))
        self.pool_pos = np.concatenate(
            [self.pool_pos, np.full(1, _POOL, np.int64)]
        )
        self.consumed = np.concatenate([self.consumed, np.zeros(1, np.int64)])
        for name in ("d_slots", "d_offered", "d_delivered", "d_backlog"):
            setattr(
                self,
                name,
                np.concatenate([getattr(self, name), np.zeros(1, np.int64)]),
            )
        self._append_axis0("pair_count", np.zeros((_W, _W), np.int64))
        self.it_buf = np.concatenate(
            [self.it_buf, np.zeros((self.it_buf.shape[0], 1), np.int8)], axis=1
        )
        self._recache_iters()
        return row

    def drop_row(self, row: int) -> None:
        """Remove one row (its buffers must already be synced flat)."""
        assert self.lat_len == 0 and self.it_len == 0
        assert not self.po_s and not self.po_chunks
        assert not self.consumed.any()  # sync() has resynced the RNGs
        np = self.engine.np
        keep = np.arange(self.size) != row
        for name in (
            "n", "iters", "qhead", "qsize", "d_slots", "d_offered",
            "d_delivered", "d_backlog", "pair_count",
            "pool", "pool_pos", "consumed",
        ):
            setattr(self, name, getattr(self, name)[keep])
        if self.kind == "fifo":
            self.qslot = self.qslot[keep]
            self.qout = self.qout[keep]
        else:
            self.qdata = self.qdata[keep]
            self.cols = self.cols[keep]
            if self.kind == "islip":
                self.gptr = self.gptr[keep]
                self.aptr = self.aptr[keep]
        self.it_buf = self.it_buf[:, keep]
        del self.fabrics[row]
        del self.rngs[row]
        del self.np_rngs[row]
        del self.np_shadow[row]
        self._recache_iters()

    def _recache_iters(self) -> None:
        """Refresh the per-group iteration-budget summary (the slot loop
        reads these every slot; they only change on add/drop)."""
        self.max_iters = int(self.iters.max()) if self.size else 0
        self.uniform_budget = bool((self.iters == self.max_iters).all())

    def _ensure_cap(self, needed: int) -> None:
        while self.cap <= needed:
            self._grow()

    def _grow(self) -> None:
        """Double every ring buffer, unrolling each ring to head 0."""
        np = self.engine.np
        cap = self.cap
        new_cap = cap * 2
        if self.kind == "fifo":
            idx = (self.qhead[..., None] + np.arange(cap)) & (cap - 1)
            for name in ("qslot", "qout"):
                old = getattr(self, name)
                new = np.zeros(old.shape[:-1] + (new_cap,), np.int64)
                new[..., :cap] = np.take_along_axis(old, idx, axis=-1)
                setattr(self, name, new)
        else:
            idx = (self.qhead[..., None] + np.arange(cap)) & (cap - 1)
            new = np.zeros(self.qdata.shape[:-1] + (new_cap,), np.int64)
            new[..., :cap] = np.take_along_axis(self.qdata, idx, axis=-1)
            self.qdata = new
        self.qhead[...] = 0
        self.cap = new_cap

    # -- offers ----------------------------------------------------------
    def flush_offers(self) -> None:
        if not self.po_s and not self.po_chunks:
            return
        np = self.engine.np
        if (
            self.po_chunks
            and not self.po_s
            and all(type(c[2]) is np.ndarray for c in self.po_chunks)
        ):
            # All-array fast path: traffic generators that pre-build
            # per-fabric arrival arrays skip list merging entirely.
            counts = np.asarray(
                [len(c[2]) for c in self.po_chunks], np.int64
            )
            s = np.repeat(
                np.asarray([c[1] for c in self.po_chunks], np.int64), counts
            )
            i = np.concatenate(
                [c[2] for c in self.po_chunks]
            ).astype(np.int64, copy=False)
            o = np.concatenate(
                [c[3] for c in self.po_chunks]
            ).astype(np.int64, copy=False)
            slots = np.repeat(
                np.asarray([c[4] for c in self.po_chunks], np.int64), counts
            )
            self.po_chunks = []
            return self._apply_offers(s, i, o, slots)
        if self.po_chunks:
            # Merge per-cell offers and bulk chunks, in arrival order,
            # as plain Python lists: one asarray per column beats one
            # small array per chunk by an order of magnitude.
            s_l: List[int] = []
            i_l: List[int] = []
            o_l: List[int] = []
            t_l: List[int] = []
            cut = 0
            for at, row, ins, outs, slot in self.po_chunks:
                if at > cut:
                    s_l += self.po_s[cut:at]
                    i_l += self.po_i[cut:at]
                    o_l += self.po_o[cut:at]
                    t_l += self.po_slot[cut:at]
                    cut = at
                count = len(ins)
                s_l += [row] * count
                i_l += list(ins)
                o_l += list(outs)
                t_l += [slot] * count
            if len(self.po_s) > cut:
                s_l += self.po_s[cut:]
                i_l += self.po_i[cut:]
                o_l += self.po_o[cut:]
                t_l += self.po_slot[cut:]
            self.po_chunks = []
        else:
            s_l, i_l, o_l, t_l = self.po_s, self.po_i, self.po_o, self.po_slot
        s = np.asarray(s_l, np.int64)
        i = np.asarray(i_l, np.int64)
        o = np.asarray(o_l, np.int64)
        slots = np.asarray(t_l, np.int64)
        self.po_s, self.po_i, self.po_o, self.po_slot = [], [], [], []
        self._apply_offers(s, i, o, slots)

    def _apply_offers(self, s, i, o, slots) -> None:
        np = self.engine.np
        self.d_offered += np.bincount(s, minlength=self.size)
        if self.kind == "fifo":
            key = s * _W + i
            qn = _W
        else:
            key = (s * _W + i) * _W + o
            qn = _W * _W
        if (np.bincount(key, minlength=qn * self.size) > 1).any():
            # Two same-flush cells into one queue: positions would
            # collide under fancy indexing, so apply sequentially.
            for row, ip, op, sl in zip(
                s.tolist(), i.tolist(), o.tolist(), slots.tolist()
            ):
                self._offer_one(row, ip, op, sl)
            return
        sizes = self.qsize.reshape(-1)[key]
        if (sizes >= self.cap).any():
            self._grow()
        pos = (self.qhead.reshape(-1)[key] + sizes) & (self.cap - 1)
        if self.kind == "fifo":
            self.qslot.reshape(qn * self.size, self.cap)[key, pos] = slots
            self.qout.reshape(qn * self.size, self.cap)[key, pos] = o
        else:
            self.qdata.reshape(qn * self.size, self.cap)[key, pos] = slots
            T = self.engine.tables
            self.cols |= (
                np.bincount(
                    s * _W + o, weights=T.pow2f[i], minlength=self.size * _W
                )
                .astype(np.int64)
                .reshape(self.size, _W)
            )
        self.qsize.reshape(-1)[key] += 1

    def _offer_one(self, row: int, i: int, o: int, slot: int) -> None:
        if self.kind == "fifo":
            if self.qsize[row, i] >= self.cap:
                self._grow()
            pos = int(self.qhead[row, i] + self.qsize[row, i]) & (self.cap - 1)
            self.qslot[row, i, pos] = slot
            self.qout[row, i, pos] = o
            self.qsize[row, i] += 1
        else:
            if self.qsize[row, i, o] >= self.cap:
                self._grow()
            pos = int(self.qhead[row, i, o] + self.qsize[row, i, o]) & (
                self.cap - 1
            )
            self.qdata[row, i, o, pos] = slot
            self.qsize[row, i, o] += 1
            self.cols[row, o] |= 1 << i

    # -- RNG mirror pools -------------------------------------------------
    def refill(self, rows) -> None:
        """Slide each listed row's unconsumed pool tail to the front and
        top the pool back up from that row's ``RandomState`` mirror."""
        for r in rows.tolist():
            pos = int(self.pool_pos[r])
            rem = _POOL - pos
            if rem:
                self.pool[r, :rem] = self.pool[r, pos:]
            self.pool[r, rem:] = self.np_rngs[r].random_sample(pos)
            self.pool_pos[r] = 0

    def resync_rngs(self) -> None:
        """Advance each row's Python RNG past the draws consumed from
        its mirror pool: the shadow mirror replays exactly ``consumed``
        values, so ``rng.getstate()`` afterwards is bit-identical to a
        scalar run's."""
        consumed = self.consumed
        for r in consumed.nonzero()[0].tolist():
            shadow = self.np_shadow[r]
            shadow.random_sample(int(consumed[r]))
            keys, pos = shadow.get_state()[1:3]
            rng = self.rngs[r]
            gauss = rng.getstate()[2]
            rng.setstate(
                (3, tuple(int(k) for k in keys) + (int(pos),), gauss)
            )
        consumed[...] = 0

    # -- sample accumulators ---------------------------------------------
    def _append_lat(self, rows, waited) -> None:
        np = self.engine.np
        count = rows.size
        need = self.lat_len + count
        if need > self.lat_s.size:
            new_size = max(need, self.lat_s.size * 2)
            for name in ("lat_s", "lat_w"):
                old = getattr(self, name)
                new = np.zeros(new_size, np.int64)
                new[: self.lat_len] = old[: self.lat_len]
                setattr(self, name, new)
        self.lat_s[self.lat_len:need] = rows
        self.lat_w[self.lat_len:need] = waited
        self.lat_len = need

    def _append_iters(self, it_rec) -> None:
        np = self.engine.np
        if self.it_len >= self.it_buf.shape[0]:
            grown = np.zeros(
                (max(256, self.it_buf.shape[0] * 2), self.size), np.int8
            )
            grown[: self.it_len] = self.it_buf[: self.it_len]
            self.it_buf = grown
        self.it_buf[self.it_len] = it_rec
        self.it_len += 1


class FabricArrayEngine:
    """Batched slot advance across every registered fabric.

    Args:
        backend: ``"auto"`` (numpy when importable, else the pure-Python
            stacked loop), ``"numpy"`` (required; raises without it), or
            ``"python"`` (forced fallback -- what the no-numpy CI job and
            the differential oracle exercise).
    """

    def __init__(self, backend: str = "auto") -> None:
        if backend not in ("auto", "numpy", "python"):
            raise ValueError(f"unknown backend {backend!r}")
        np = load_numpy() if backend in ("auto", "numpy") else None
        if backend == "numpy" and np is None:
            raise RuntimeError(
                "numpy backend requested but numpy is unavailable "
                "(not installed, or REPRO_FASTPATH_FORCE_PYTHON is set)"
            )
        self.np = np
        self.backend = "numpy" if np is not None else "python"
        self.tables = Tables.get(np) if np is not None else None
        self._groups: Dict[Tuple[str, bool], _Group] = {}
        #: id(fabric) -> ("scalar", None) or ("group", (group, row)).
        self._where: Dict[int, Tuple[str, Any]] = {}
        self._scalar: List[Any] = []  # scalar-resident, registration order
        self._fabrics: List[Any] = []  # registration order (all)
        self.slots_stepped = 0

    # ------------------------------------------------------------------
    # registration and residency
    # ------------------------------------------------------------------
    def register(self, fabric) -> None:
        """Adopt ``fabric``.  Vectorizable configurations are ingested
        into stacked arrays; everything else stays scalar-resident (the
        engine still batches its slot loop).  After registration the
        fabric must be driven only through the engine (``offer`` /
        ``step_all``) until :meth:`unregister` hands its state back."""
        if id(fabric) in self._where:
            raise ValueError("fabric is already registered")
        self._fabrics.append(fabric)
        kind = _vectorizable(fabric) if self.np is not None else None
        if kind is None:
            self._where[id(fabric)] = ("scalar", None)
            self._scalar.append(fabric)
            return
        self.sync()  # row indices in the sample buffers must stay stable
        group = self._groups.get(kind)
        if group is None:
            group = self._groups[kind] = _Group(self, kind[0], kind[1])
        row = group.add_row(fabric)
        self._where[id(fabric)] = ("group", (group, row))

    def unregister(self, fabric) -> None:
        """Release ``fabric``, writing its live state (queues, masks,
        pointers, metrics) back so it can be driven scalar again."""
        place = self._where.pop(id(fabric), None)
        if place is None:
            raise ValueError("fabric is not registered")
        self._fabrics.remove(fabric)
        if place[0] == "scalar":
            self._scalar.remove(fabric)
            return
        self.sync()
        group, row = self._where_row(fabric, place)
        self._write_back(group, row, fabric)
        group.drop_row(row)
        self._reindex(group)

    def pin_scalar(self, fabric) -> None:
        """Move a vectorized fabric onto the per-fabric scalar path (the
        fault-blast-radius hook).  No-op when already scalar-resident."""
        place = self._where.get(id(fabric))
        if place is None:
            raise ValueError("fabric is not registered")
        if place[0] == "scalar":
            return
        self.sync()
        group, row = self._where_row(fabric, place)
        self._write_back(group, row, fabric)
        group.drop_row(row)
        self._reindex(group)
        self._where[id(fabric)] = ("scalar", None)
        self._scalar.append(fabric)

    def unpin(self, fabric) -> None:
        """Return a pinned fabric to the stacked arrays (when its
        configuration still qualifies; otherwise it stays scalar)."""
        place = self._where.get(id(fabric))
        if place is None:
            raise ValueError("fabric is not registered")
        if place[0] != "scalar":
            return
        kind = _vectorizable(fabric) if self.np is not None else None
        if kind is None:
            return
        self.sync()
        self._scalar.remove(fabric)
        group = self._groups.get(kind)
        if group is None:
            group = self._groups[kind] = _Group(self, kind[0], kind[1])
        row = group.add_row(fabric)
        self._where[id(fabric)] = ("group", (group, row))

    def vectorized(self, fabric) -> bool:
        """True when ``fabric`` currently lives in the stacked arrays."""
        place = self._where.get(id(fabric))
        return place is not None and place[0] == "group"

    @property
    def n_registered(self) -> int:
        return len(self._fabrics)

    @property
    def n_vectorized(self) -> int:
        return sum(g.size for g in self._groups.values())

    def _where_row(self, fabric, place) -> Tuple[_Group, int]:
        group, row = place[1]
        assert group.fabrics[row] is fabric
        return group, row

    def _reindex(self, group: _Group) -> None:
        for row, fabric in enumerate(group.fabrics):
            self._where[id(fabric)] = ("group", (group, row))

    # ------------------------------------------------------------------
    # traffic
    # ------------------------------------------------------------------
    def offer(self, fabric, input_port: int, output_port: int, slot: int):
        place = self._where[id(fabric)]
        if place[0] == "scalar":
            return fabric.offer(input_port, output_port, slot)
        group, row = place[1]
        group.po_s.append(row)
        group.po_i.append(input_port)
        group.po_o.append(output_port)
        group.po_slot.append(slot)
        return True

    def offer_batch(self, fabric, cells, slot: int) -> None:
        place = self._where[id(fabric)]
        if place[0] == "scalar":
            offer_batch = getattr(fabric, "offer_batch", None)
            if offer_batch is not None:
                offer_batch(cells, slot)
            else:
                for i, o in cells:
                    fabric.offer(i, o, slot)
            return
        group, row = place[1]
        for i, o in cells:
            group.po_s.append(row)
            group.po_i.append(i)
            group.po_o.append(o)
            group.po_slot.append(slot)

    def offer_arrays(self, fabric, input_ports, output_ports, slot: int):
        """Bulk-enqueue one slot's arrivals for ``fabric`` from two
        parallel (input, output) sequences -- the stacked-array analogue
        of the scalar ``offer_batch``/``offer_train`` fast paths, and
        what traffic generators should use at scale (one call per fabric
        per slot instead of one per cell)."""
        place = self._where[id(fabric)]
        if place[0] == "scalar":
            offer_batch = getattr(fabric, "offer_batch", None)
            if offer_batch is not None:
                offer_batch(list(zip(input_ports, output_ports)), slot)
            else:
                for i, o in zip(input_ports, output_ports):
                    fabric.offer(i, o, slot)
            return
        group, row = place[1]
        group.po_chunks.append(
            (len(group.po_s), row, input_ports, output_ports, slot)
        )

    def total_backlog(self, fabric) -> int:
        place = self._where[id(fabric)]
        if place[0] == "scalar":
            return fabric.total_backlog()
        group, row = place[1]
        group.flush_offers()
        return int(group.qsize[row].sum())

    # ------------------------------------------------------------------
    # the slot advance
    # ------------------------------------------------------------------
    def step_all(self, slot: int) -> None:
        """Advance every registered fabric by one cell slot."""
        for group in self._groups.values():
            if group.size:
                group.flush_offers()
                if group.kind == "fifo":
                    self._step_fifo(group, slot)
                else:
                    self._step_voq(group, slot)
        for fabric in self._scalar:
            fabric.step(slot)
        self.slots_stepped += 1

    # -- VOQ (PIM / iSLIP) ----------------------------------------------
    def _step_voq(self, g: _Group, slot: int) -> None:
        np, T = self.np, self.tables
        S = g.size
        # cols_live[s, o]: inputs with backlog to output o that are not
        # yet matched, zeroed once output o matches.  Maintaining it in
        # place makes the column masks the whole match-round state: an
        # output participates iff its column is non-zero, and a fabric
        # has reached a maximal matching iff its row of columns is zero.
        cols_live = g.cols.copy()
        g.d_slots += 1
        g.d_backlog += cols_live.any(axis=1)

        it_rec = np.zeros(S, np.int64)
        pairs_s: List[Any] = []
        pairs_i: List[Any] = []
        pairs_o: List[Any] = []
        # Homogeneous iteration budgets (the common case: one config
        # shared by the whole group) skip the per-fabric budget masks.
        max_iters = g.max_iters
        uniform_budget = g.uniform_budget
        for t in range(1, max_iters + 1):
            sel_s, sel_o = np.nonzero(cols_live)
            if sel_s.size:
                col = cols_live[sel_s, sel_o]
                if g.kind == "islip":
                    chosen = T.rotate[col, g.gptr[sel_s, sel_o]].astype(
                        np.int64
                    )
                elif g.strict:
                    k = T.pop[col]
                    j = self._draw_randrange(g, sel_s, k)
                    chosen = T.select[col, j].astype(np.int64)
                else:
                    k = T.pop[col]
                    multi = k > 1
                    if multi.any():
                        j = np.zeros(col.size, np.int64)
                        u = self._draw_uniform(g, sel_s[multi])
                        j[multi] = (u * k[multi]).astype(np.int64)
                        chosen = T.select[col, j].astype(np.int64)
                    else:
                        chosen = T.select[col, 0].astype(np.int64)
                # Pack grant masks by weighted bincount: each output
                # grants one input, so every contribution to a row is a
                # distinct power of two and float sum == bitwise or.
                grows = (
                    np.bincount(
                        sel_s * _W + chosen,
                        weights=T.pow2f[sel_o],
                        minlength=S * _W,
                    )
                    .astype(np.int64)
                    .reshape(S, _W)
                )
                acc_s, acc_i = np.nonzero(grows)
                granted = np.bincount(
                    acc_s, weights=T.pow2f[acc_i], minlength=S
                ).astype(np.int64)
                rowm = grows[acc_s, acc_i]
                if g.kind == "islip":
                    accepted = T.rotate[rowm, g.aptr[acc_s, acc_i]].astype(
                        np.int64
                    )
                    if t == 1:
                        # Pointers move only on first-iteration accepts.
                        g.gptr[acc_s, accepted] = (acc_i + 1) % g.n[acc_s]
                        g.aptr[acc_s, acc_i] = (accepted + 1) % g.n[acc_s]
                elif g.strict:
                    ka = T.pop[rowm]
                    j = self._draw_randrange(g, acc_s, ka)
                    accepted = T.select[rowm, j].astype(np.int64)
                else:
                    ka = T.pop[rowm]
                    accepted = T.select[rowm, 0].astype(np.int64)
                    am = ka > 1
                    if am.any():
                        u = self._draw_uniform(g, acc_s[am])
                        j = (u * ka[am]).astype(np.int64)
                        accepted[am] = T.select[rowm[am], j]
                # Granted inputs all match (each accepts one grant), and
                # each accepted output is matched: drop both from play.
                cols_live &= ~granted[:, None]
                cols_live[acc_s, accepted] = 0
                pairs_s.append(acc_s)
                pairs_i.append(acc_i)
                pairs_o.append(accepted)
            active = cols_live.any(axis=1)  # unmatched work remains
            if uniform_budget:
                settled = ~active & (it_rec == 0)
                it_rec[settled] = t
                if t == max_iters or not active.any():
                    break
            else:
                settled = ~active & (it_rec == 0) & (g.iters >= t)
                it_rec[settled] = t
                # Fabrics whose budget is spent stop participating.
                cols_live[g.iters <= t] = 0
                if not cols_live.any():
                    break
        g._append_iters(it_rec)

        if pairs_s:
            ds = np.concatenate(pairs_s)
            di = np.concatenate(pairs_i)
            do = np.concatenate(pairs_o)
            if ds.size:
                # Stable by fabric: per-fabric delivery order becomes
                # (iteration, ascending input) -- the scalar matching
                # dict's insertion order, hence its sample order.
                order = np.argsort(ds, kind="stable")
                ds, di, do = ds[order], di[order], do[order]
                self._deliver_voq(g, ds, di, do, slot)

    def _deliver_voq(self, g: _Group, ds, di, do, slot: int) -> None:
        np, T = self.np, self.tables
        flat = (ds * _W + di) * _W + do
        qhead = g.qhead.reshape(-1)
        qsize = g.qsize.reshape(-1)
        head = qhead[flat]
        arrivals = g.qdata.reshape(-1, g.cap)[flat, head]
        qhead[flat] = (head + 1) & (g.cap - 1)
        qsize[flat] -= 1
        emptied = qsize[flat] == 0
        if emptied.any():
            # Clear mask bits for queues that just drained.  (s, o) is
            # unique within a slot's matching, so the in-place fancy
            # update cannot collide.
            es, ei, eo = ds[emptied], di[emptied], do[emptied]
            g.cols[es, eo] &= ~T.pow2[ei]
        g.d_delivered += np.bincount(ds, minlength=g.size)
        g.pair_count.reshape(-1)[flat] += 1
        g._append_lat(ds, slot - arrivals)

    # -- FIFO ------------------------------------------------------------
    def _step_fifo(self, g: _Group, slot: int) -> None:
        np, T = self.np, self.tables
        S = g.size
        g.d_slots += 1
        backlogged = g.qsize > 0  # (S, 16)
        g.d_backlog += backlogged.any(axis=1)
        hs, hi = np.nonzero(backlogged)
        if hs.size == 0:
            return
        heads = g.qout.reshape(-1, g.cap)[
            hs * _W + hi, g.qhead[hs, hi]
        ]
        cols = (
            np.bincount(
                hs * _W + heads, weights=T.pow2f[hi], minlength=S * _W
            )
            .astype(np.int64)
            .reshape(S, _W)
        )
        sel_s, sel_o = np.nonzero(cols)  # ascending output per fabric
        col = cols[sel_s, sel_o]
        if g.strict:
            k = T.pop[col]
            j = self._draw_randrange(g, sel_s, k)
            winner = T.select[col, j].astype(np.int64)
        else:
            k = T.pop[col]
            winner = T.select[col, 0].astype(np.int64)
            multi = k > 1
            if multi.any():
                u = self._draw_uniform(g, sel_s[multi])
                j = (u * k[multi]).astype(np.int64)
                winner[multi] = T.select[col[multi], j]
        flat = sel_s * _W + winner
        qhead = g.qhead.reshape(-1)
        qsize = g.qsize.reshape(-1)
        head = qhead[flat]
        arrivals = g.qslot.reshape(-1, g.cap)[flat, head]
        qhead[flat] = (head + 1) & (g.cap - 1)
        qsize[flat] -= 1
        g.d_delivered += np.bincount(sel_s, minlength=S)
        g.pair_count.reshape(-1)[(sel_s * _W + winner) * _W + sel_o] += 1
        # sel_s is already non-decreasing: per-fabric delivery order is
        # ascending output, the scalar matching dict's insertion order.
        g._append_lat(sel_s, slot - arrivals)

    # -- RNG reproduction ------------------------------------------------
    def _draw_uniform(self, g: _Group, rows):
        """One ``rng.random()`` per entry, grouped per fabric in order.

        ``rows`` must be non-decreasing (row-major ``nonzero`` output),
        which is exactly the scalar visit order: each fabric's draws are
        consecutive and taken from that fabric's own scheduler RNG.
        Values come from the per-row MT19937 mirror pools (see
        :func:`_mirror_rng`); the lagging Python RNG objects are brought
        back up to date at :meth:`sync`.
        """
        np = self.np
        cnt = np.bincount(rows, minlength=g.size)
        over = g.pool_pos + cnt > _POOL
        if over.any():
            g.refill(np.flatnonzero(over))
        excl = np.cumsum(cnt) - cnt
        offset = np.arange(rows.size) - excl[rows]
        out = g.pool[rows, g.pool_pos[rows] + offset]
        g.pool_pos += cnt
        g.consumed += cnt
        return out

    def _draw_randrange(self, g: _Group, rows, k):
        """One ``rng.randrange(k)`` per entry (strict mode), in order."""
        np = self.np
        rngs = g.rngs
        out = []
        append = out.append
        prev = -1
        randrange = None
        for row, kv in zip(rows.tolist(), k.tolist()):
            if row != prev:
                randrange = rngs[row].randrange
                prev = row
            append(randrange(kv))
        return np.asarray(out, np.int64)

    # ------------------------------------------------------------------
    # metrics flush and state hand-back
    # ------------------------------------------------------------------
    def sync(self) -> None:
        """Flush accumulated deltas into every fabric's ``metrics``.

        After ``sync`` each vectorized fabric's :class:`FabricMetrics`
        is exactly what a scalar run would have produced: counters,
        latency samples (same values, same order), iterations tallies in
        slot order, ``maximal_within``, ``delivered_per_pair``.
        """
        for group in self._groups.values():
            if group.size:
                group.flush_offers()
                self._sync_group(group)
                group.resync_rngs()

    def _sync_group(self, g: _Group) -> None:
        np = self.np
        lat_s = g.lat_s[: g.lat_len]
        lat_w = g.lat_w[: g.lat_len]
        if g.lat_len:
            order = np.argsort(lat_s, kind="stable")
            lat_s = lat_s[order]
            lat_w = lat_w[order]
            bounds = np.cumsum(np.bincount(lat_s, minlength=g.size))
        it_buf = g.it_buf[: g.it_len]
        for row, fabric in enumerate(g.fabrics):
            m = fabric.metrics
            m.slots += int(g.d_slots[row])
            m.cells_offered += int(g.d_offered[row])
            m.cells_delivered += int(g.d_delivered[row])
            m.slots_with_backlog += int(g.d_backlog[row])
            if g.lat_len:
                lo = 0 if row == 0 else int(bounds[row - 1])
                hi = int(bounds[row])
                if hi > lo:
                    m.latency._samples.extend(lat_w[lo:hi].tolist())
            if g.kind != "fifo" and g.it_len:
                col = it_buf[:, row]
                buckets = col[col > 0]
                if buckets.size:
                    m.iterations_to_maximal._samples.extend(buckets.tolist())
                    for bucket, count in enumerate(
                        np.bincount(buckets).tolist()
                    ):
                        if count:
                            m.maximal_within[bucket] = (
                                m.maximal_within.get(bucket, 0) + count
                            )
            pc = g.pair_count[row]
            if pc.any():
                per_pair = m.delivered_per_pair
                for i, o in zip(*np.nonzero(pc)):
                    pair = (int(i), int(o))
                    per_pair[pair] = per_pair.get(pair, 0) + int(pc[i, o])
        g.d_slots[...] = 0
        g.d_offered[...] = 0
        g.d_delivered[...] = 0
        g.d_backlog[...] = 0
        g.pair_count[...] = 0
        g.lat_len = 0
        g.it_len = 0

    def reset_metrics(self) -> None:
        """Fresh measurement interval for every registered fabric (the
        warmup boundary).  Pending deltas are dropped, not flushed."""
        for group in self._groups.values():
            group.flush_offers()
            group.d_slots[...] = 0
            group.d_offered[...] = 0
            group.d_delivered[...] = 0
            group.d_backlog[...] = 0
            group.pair_count[...] = 0
            group.lat_len = 0
            group.it_len = 0
        for fabric in self._fabrics:
            fabric.reset_metrics()

    def _write_back(self, g: _Group, row: int, fabric) -> None:
        """Materialize one stacked row back onto its fabric object."""
        np = self.np
        cap = g.cap
        n = fabric.n_ports
        if g.kind == "fifo":
            for i in range(n):
                size = int(g.qsize[row, i])
                head = int(g.qhead[row, i])
                fabric.queues[i] = deque(
                    (
                        int(g.qslot[row, i, (head + j) & (cap - 1)]),
                        int(g.qout[row, i, (head + j) & (cap - 1)]),
                    )
                    for j in range(size)
                )
            return
        for i in range(n):
            per_input: Dict[int, Any] = {}
            for o in range(n):
                size = int(g.qsize[row, i, o])
                if size:
                    head = int(g.qhead[row, i, o])
                    per_input[o] = deque(
                        int(g.qdata[row, i, o, (head + j) & (cap - 1)])
                        for j in range(size)
                    )
            fabric.queues[i] = per_input
        fabric.recompute_masks()
        if g.kind == "islip":
            fabric.scheduler.grant_pointers = [
                int(v) for v in g.gptr[row, :n]
            ]
            fabric.scheduler.accept_pointers = [
                int(v) for v in g.aptr[row, :n]
            ]
