"""Vectorized whole-fabric slot engine (DESIGN §13).

``FabricArrayEngine`` batches every registered switch fabric's crossbar
match into one array pass per cell slot; ``FabricSlotDriver`` coalesces
per-switch kernel slot events into one wave event per slot.  numpy is an
optional dev extra -- without it (or with ``REPRO_FASTPATH_FORCE_PYTHON``
set) the same API runs a pure-Python stacked loop with identical
results.
"""

from repro.fastpath.backend import FORCE_PYTHON_ENV, load_numpy, python_forced
from repro.fastpath.driver import FabricSlotDriver
from repro.fastpath.engine import FabricArrayEngine

__all__ = [
    "FORCE_PYTHON_ENV",
    "FabricArrayEngine",
    "FabricSlotDriver",
    "load_numpy",
    "python_forced",
]
