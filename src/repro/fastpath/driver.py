"""One kernel slot event for the whole fabric.

Without the driver every :class:`~repro.switch.switch.AN2Switch` with
backlog schedules its *own* ``_slot_tick`` timer, so a busy S-switch
network pays S heap pushes + S heap pops + S callback dispatches per
cell slot.  :class:`FabricSlotDriver` replaces that with a single
*wave* event: switches asking for a tick in the same slot window are
batched and advanced together when the wave fires.

Semantics: the driver models a **fabric-wide synchronized slot clock**
-- all adopted switches tick on one shared slot boundary instead of S
individually-phased ones.  A switch that requests a tick mid-window is
advanced at the wave boundary (up to one slot earlier than its private
timer would have fired); that is safe because ``_slot_tick`` re-checks
``can_transmit_at`` on every output port before sending, so no switch
ever transmits faster than the line rate.  Dispatch within a wave is
ordered by node id, keeping runs deterministic.

Only switches on the shared zero-drift clock are adopted
(:meth:`adopt` refuses the rest): a drifting oscillator is *supposed*
to tick at its own rate, and collapsing it onto the shared boundary
would change what the drift machinery measures.  Those switches keep
their per-switch timers -- the same hybrid-fidelity pattern the array
engine uses for its scalar residents.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["FabricSlotDriver"]


class FabricSlotDriver:
    """Coalesce per-switch slot timers into one wave event per slot."""

    def __init__(self, sim, slot_time_us: float) -> None:
        self.sim = sim
        self.slot_time_us = slot_time_us
        self._pending: Dict[str, object] = {}
        self._scheduled = False
        #: wave events fired / switch ticks dispatched (the event-count
        #: saving is ``ticks - waves`` versus per-switch scheduling).
        self.waves = 0
        self.ticks = 0
        self.adopted = 0

    def adopt(self, switch) -> bool:
        """Route ``switch``'s slot timers through this driver.

        Returns False (and leaves the switch on its private timer) when
        the switch's clock drifts or its slot time differs -- the wave
        boundary only stands in for timers it exactly replaces.
        """
        if switch.clock.drift_ppm != 0.0:
            return False
        if switch.config.slot_time_us != self.slot_time_us:
            return False
        switch._slot_driver = self
        self.adopted += 1
        return True

    def request_tick(self, switch) -> None:
        """Enqueue ``switch`` for the next wave (idempotent per wave)."""
        self._pending[switch.node_id] = switch
        if not self._scheduled:
            self._scheduled = True
            self.sim.schedule(self.slot_time_us, self._fire)

    def _fire(self) -> None:
        self._scheduled = False
        batch = self._pending
        self._pending = {}
        self.waves += 1
        self.ticks += len(batch)
        for node_id in sorted(batch):
            batch[node_id]._slot_tick()
