"""The sweep engine: deterministic fan-out of experiment grids.

The determinism contract, in full:

- **Per-task seeds are positional-order-free.**  A task's seed is
  ``derived_seed(task name, root seed)`` where the name encodes the
  driver, the grid point (keys sorted), and the repeat index.  Adding a
  grid value or another repeat never perturbs any other task's seed.
- **Workers never share a simulator.**  Every task builds its own world
  (its own :class:`~repro.sim.kernel.Simulator`, RNG substreams, and
  network) from its seed inside the worker process; no simulation state
  crosses a process boundary -- only plain-data payloads come back.
- **Results are returned in task order**, regardless of which worker
  finished first, so downstream aggregation is schedule-independent.
- **Payloads are content-digested** (canonical JSON, SHA-256), which
  makes parallel == serial *checkable*: :meth:`SweepEngine.verify`
  replays a deterministic sample of tasks serially in-process and
  compares digests.  Any dependence on worker identity, scheduling, or
  shared state shows up as a digest mismatch.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass
from multiprocessing import get_context
from typing import Any, Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.exec.drivers import get_driver
from repro.sim.random import derived_seed, derived_stream


@dataclass(frozen=True)
class SweepTask:
    """One grid point x repeat: everything a worker needs, all picklable
    plain data (the driver travels by name, never as a callable)."""

    index: int
    driver: str
    params: Tuple[Tuple[str, Any], ...]  # sorted (key, value) pairs
    seed: int
    name: str

    def params_dict(self) -> Dict[str, Any]:
        return dict(self.params)


@dataclass(frozen=True)
class SweepResult:
    task: SweepTask
    payload: Dict[str, Any]
    digest: str


def payload_digest(payload: Mapping[str, Any]) -> str:
    """SHA-256 over the canonical JSON form of a driver payload."""
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def make_tasks(
    driver: str,
    grid: Mapping[str, Sequence[Any]],
    repeats: int = 1,
    root_seed: int = 0,
) -> List[SweepTask]:
    """Expand a parameter grid into seeded tasks.

    Grid keys are sorted and expanded in lexicographic product order, so
    the task list (and every derived seed) is independent of the dict's
    insertion order.
    """
    if repeats < 1:
        raise ValueError(f"repeats {repeats} must be >= 1")
    get_driver(driver)  # fail fast on unknown names
    keys = sorted(grid)
    tasks: List[SweepTask] = []
    index = 0
    for combo in itertools.product(*(grid[key] for key in keys)):
        params = tuple(zip(keys, combo))
        point = ",".join(f"{key}={value}" for key, value in params)
        for rep in range(repeats):
            name = f"exec/{driver}/{point}/rep{rep}"
            tasks.append(
                SweepTask(
                    index=index,
                    driver=driver,
                    params=params,
                    seed=derived_seed(name, root_seed),
                    name=name,
                )
            )
            index += 1
    return tasks


def run_task(task: SweepTask) -> SweepResult:
    """Execute one task (module-level so worker pools can pickle it)."""
    payload = get_driver(task.driver)(task.params_dict(), task.seed)
    return SweepResult(task=task, payload=payload, digest=payload_digest(payload))


class SweepEngine:
    """Runs sweep tasks serially or across a process pool.

    ``workers <= 1`` runs everything in-process (the reference
    schedule); larger values fan tasks out with ``chunksize=1`` so slow
    points do not convoy behind fast ones.  Either way the result list
    is in task order and digest-identical -- the engine's whole job is
    to make that equivalence hold and then prove it via :meth:`verify`.
    """

    def __init__(self, workers: int = 0, start_method: str = "") -> None:
        self.workers = workers
        self.start_method = start_method

    def run(self, tasks: Iterable[SweepTask]) -> List[SweepResult]:
        task_list = list(tasks)
        if self.workers <= 1 or len(task_list) <= 1:
            return [run_task(task) for task in task_list]
        context = (
            get_context(self.start_method)
            if self.start_method
            else get_context()
        )
        processes = min(self.workers, len(task_list))
        with context.Pool(processes=processes) as pool:
            # Pool.map preserves input order in its result list no
            # matter which worker finishes when.
            return pool.map(run_task, task_list, chunksize=1)

    def verify(
        self,
        results: Sequence[SweepResult],
        sample: int = 3,
        root_seed: int = 0,
    ) -> List[Tuple[SweepResult, SweepResult]]:
        """Replay a deterministic sample serially; return mismatches.

        Each sampled task re-runs in *this* process from its recorded
        seed; its payload digest must equal the one the (possibly
        parallel) run produced.  Returns ``(original, replay)`` pairs
        that disagreed -- empty means the sampled equivalence held.
        """
        if not results:
            return []
        rng = derived_stream("exec/verify", root_seed)
        count = min(sample, len(results))
        picks = sorted(rng.sample(range(len(results)), count))
        mismatches: List[Tuple[SweepResult, SweepResult]] = []
        for position in picks:
            original = results[position]
            replay = run_task(original.task)
            if replay.digest != original.digest:
                mismatches.append((original, replay))
        return mismatches
