"""The sweep engine: deterministic fan-out of experiment grids.

The determinism contract, in full:

- **Per-task seeds are positional-order-free.**  A task's seed is
  ``derived_seed(task name, root seed)`` where the name encodes the
  driver, the grid point (keys sorted), and the repeat index.  Adding a
  grid value or another repeat never perturbs any other task's seed.
- **Workers never share a simulator.**  Every task builds its own world
  (its own :class:`~repro.sim.kernel.Simulator`, RNG substreams, and
  network) from its seed inside the worker process; no simulation state
  crosses a process boundary -- only plain-data payloads come back.
- **Results are returned in task order**, regardless of which worker
  finished first, so downstream aggregation is schedule-independent.
- **Payloads are content-digested** (canonical JSON, SHA-256), which
  makes parallel == serial *checkable*: :meth:`SweepEngine.verify`
  replays a deterministic sample of tasks serially in-process and
  compares digests.  Any dependence on worker identity, scheduling, or
  shared state shows up as a digest mismatch.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import pickle
import time
from dataclasses import dataclass, field
from multiprocessing import get_context
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.exec.drivers import get_driver
from repro.sim.random import derived_seed, derived_stream


@dataclass(frozen=True)
class SweepTask:
    """One grid point x repeat: everything a worker needs, all picklable
    plain data (the driver travels by name, never as a callable)."""

    index: int
    driver: str
    params: Tuple[Tuple[str, Any], ...]  # sorted (key, value) pairs
    seed: int
    name: str

    def params_dict(self) -> Dict[str, Any]:
        return dict(self.params)


@dataclass(frozen=True)
class SweepResult:
    task: SweepTask
    payload: Dict[str, Any]
    digest: str


def payload_digest(payload: Mapping[str, Any]) -> str:
    """SHA-256 over the canonical JSON form of a driver payload."""
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def make_tasks(
    driver: str,
    grid: Mapping[str, Sequence[Any]],
    repeats: int = 1,
    root_seed: int = 0,
) -> List[SweepTask]:
    """Expand a parameter grid into seeded tasks.

    Grid keys are sorted and expanded in lexicographic product order, so
    the task list (and every derived seed) is independent of the dict's
    insertion order.
    """
    if repeats < 1:
        raise ValueError(f"repeats {repeats} must be >= 1")
    get_driver(driver)  # fail fast on unknown names
    keys = sorted(grid)
    tasks: List[SweepTask] = []
    index = 0
    for combo in itertools.product(*(grid[key] for key in keys)):
        params = tuple(zip(keys, combo))
        point = ",".join(f"{key}={value}" for key, value in params)
        for rep in range(repeats):
            name = f"exec/{driver}/{point}/rep{rep}"
            tasks.append(
                SweepTask(
                    index=index,
                    driver=driver,
                    params=params,
                    seed=derived_seed(name, root_seed),
                    name=name,
                )
            )
            index += 1
    return tasks


def run_task(task: SweepTask) -> SweepResult:
    """Execute one task (module-level so worker pools can pickle it)."""
    payload = get_driver(task.driver)(task.params_dict(), task.seed)
    return SweepResult(task=task, payload=payload, digest=payload_digest(payload))


def run_task_timed(
    task: SweepTask,
) -> Tuple[SweepResult, int, float, float, float]:
    """Like :func:`run_task`, but stamped for phase attribution.

    Returns ``(result, worker pid, start_mono, end_mono, execute_s)``.
    The monotonic stamps use ``time.monotonic()``, which on Linux is
    CLOCK_MONOTONIC and therefore comparable across the parent and its
    forked/spawned workers; ``execute_s`` is a local ``perf_counter``
    span around the driver call alone.
    """
    start_mono = time.monotonic()
    exec_start = time.perf_counter()
    result = run_task(task)
    execute_s = time.perf_counter() - exec_start
    end_mono = time.monotonic()
    return result, os.getpid(), start_mono, end_mono, execute_s


@dataclass
class TaskTiming:
    """Where one task's wall-clock went, phase by phase.

    - ``serialize_s``: pickling the task payload in the parent (measured
      explicitly; the pool pickles again, but the cost is the same shape).
    - ``dispatch_s``: submit in the parent until the worker starts --
      queueing, pickle transfer, and worker availability.
    - ``execute_s``: the driver call inside the worker.
    - ``merge_s``: worker finish until the parent's result callback ran
      -- result pickling, transfer, and parent-side readiness.

    Cross-process deltas are clamped at zero: monotonic clocks are
    comparable across processes on Linux but not perfectly so elsewhere.
    """

    name: str
    worker: int
    serialize_s: float
    dispatch_s: float
    execute_s: float
    merge_s: float


@dataclass
class SweepTelemetry:
    """Per-phase, per-worker accounting for one :meth:`SweepEngine.run`.

    ``pool_startup_s`` is the cost of creating the process pool itself
    (interpreter spawn/fork + import), paid once per run and invisible in
    per-task phases -- historically the dominant term in short sweeps.
    """

    workers: int
    start_method: str
    pool_startup_s: float = 0.0
    wall_s: float = 0.0
    #: the engine's configured ``Pool.map`` chunk size (the instrumented
    #: path itself submits per-task so each task gets its own stamps).
    chunksize: int = 1
    #: True when the run reused an already-warm persistent pool, so
    #: ``pool_startup_s`` is genuinely zero rather than unmeasured.
    pool_reused: bool = False
    tasks: List[TaskTiming] = field(default_factory=list)

    def phase_totals(self) -> Dict[str, float]:
        totals = {"serialize": 0.0, "dispatch": 0.0, "execute": 0.0, "merge": 0.0}
        for t in self.tasks:
            totals["serialize"] += t.serialize_s
            totals["dispatch"] += t.dispatch_s
            totals["execute"] += t.execute_s
            totals["merge"] += t.merge_s
        return totals

    def per_worker(self) -> Dict[int, Dict[str, Any]]:
        """Aggregate task phases by worker pid (sorted by pid)."""
        workers: Dict[int, Dict[str, Any]] = {}
        for t in self.tasks:
            row = workers.setdefault(
                t.worker,
                {"tasks": 0, "dispatch": 0.0, "execute": 0.0, "merge": 0.0},
            )
            row["tasks"] += 1
            row["dispatch"] += t.dispatch_s
            row["execute"] += t.execute_s
            row["merge"] += t.merge_s
        return dict(sorted(workers.items()))

    def render(self) -> str:
        """A human-readable phase table (tools print this verbatim)."""
        startup = (
            "pool reused"
            if self.pool_reused
            else f"pool startup {self.pool_startup_s * 1e3:.1f} ms"
        )
        lines = [
            f"sweep telemetry: {len(self.tasks)} tasks, "
            f"{self.workers} worker(s), wall {self.wall_s * 1e3:.1f} ms, "
            f"{startup}, chunksize {self.chunksize}"
        ]
        totals = self.phase_totals()
        lines.append(
            "  phase totals (summed over tasks): "
            + ", ".join(
                f"{name} {seconds * 1e3:.1f} ms"
                for name, seconds in totals.items()
            )
        )
        header = (
            f"  {'worker':>8} {'tasks':>5} {'dispatch_ms':>12} "
            f"{'execute_ms':>11} {'merge_ms':>9}"
        )
        lines.append(header)
        for pid, row in self.per_worker().items():
            lines.append(
                f"  {pid:>8} {row['tasks']:>5} {row['dispatch'] * 1e3:>12.1f} "
                f"{row['execute'] * 1e3:>11.1f} {row['merge'] * 1e3:>9.1f}"
            )
        busy = totals["execute"]
        if self.wall_s > 0 and self.workers > 1:
            utilization = busy / (self.wall_s * self.workers)
            lines.append(
                f"  worker utilization {utilization * 100.0:.0f}% "
                f"(execute {busy * 1e3:.1f} ms across "
                f"{self.workers} workers over {self.wall_s * 1e3:.1f} ms wall)"
            )
        return "\n".join(lines)


class SweepEngine:
    """Runs sweep tasks serially or across a process pool.

    ``workers <= 1`` runs everything in-process (the reference
    schedule); larger values fan tasks out across a process pool.
    Either way the result list is in task order and digest-identical --
    the engine's whole job is to make that equivalence hold and then
    prove it via :meth:`verify`.

    ``chunksize`` is handed straight to ``Pool.map``: 1 (the default)
    dispatches one task per IPC round trip so slow points never convoy
    behind fast ones, while larger chunks amortize the pickle/dispatch
    overhead when the grid is many small uniform tasks.  Seeding is
    positional-order-free, so chunking can never change any payload --
    only the schedule.

    ``persistent_pool=True`` keeps the worker pool alive across
    :meth:`run` calls instead of paying pool startup (~25 ms measured,
    DESIGN.md section 10.1) per sweep; callers that loop many small
    sweeps opt in and :meth:`close` the engine when done.  The pool is
    created lazily at ``workers`` processes on the first parallel run.
    """

    def __init__(
        self,
        workers: int = 0,
        start_method: str = "",
        chunksize: int = 1,
        persistent_pool: bool = False,
    ) -> None:
        if chunksize < 1:
            raise ValueError(f"chunksize {chunksize} must be >= 1")
        self.workers = workers
        self.start_method = start_method
        self.chunksize = chunksize
        self.persistent_pool = persistent_pool
        self._pool = None
        #: filled by :meth:`run` when called with ``telemetry=True``.
        self.last_telemetry: Optional[SweepTelemetry] = None

    def _context(self):
        return (
            get_context(self.start_method)
            if self.start_method
            else get_context()
        )

    def _acquire_pool(self, n_tasks: int):
        """``(pool, reused, startup_s)`` honouring the persistence mode.

        A persistent pool is always sized to ``workers`` (it must serve
        later, possibly larger, runs); a throwaway pool never spawns
        more processes than it has tasks.
        """
        if self.persistent_pool:
            if self._pool is not None:
                return self._pool, True, 0.0
            start = time.monotonic()
            self._pool = self._context().Pool(processes=self.workers)
            return self._pool, False, time.monotonic() - start
        start = time.monotonic()
        pool = self._context().Pool(processes=min(self.workers, n_tasks))
        return pool, False, time.monotonic() - start

    def close(self) -> None:
        """Shut down the persistent pool, if one is alive (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def run(
        self, tasks: Iterable[SweepTask], telemetry: bool = False
    ) -> List[SweepResult]:
        task_list = list(tasks)
        if telemetry:
            return self._run_telemetry(task_list)
        if self.workers <= 1 or len(task_list) <= 1:
            return [run_task(task) for task in task_list]
        pool, _, _ = self._acquire_pool(len(task_list))
        try:
            # Pool.map preserves input order in its result list no
            # matter which worker finishes when.
            return pool.map(run_task, task_list, chunksize=self.chunksize)
        finally:
            if not self.persistent_pool:
                pool.terminate()
                pool.join()

    def _run_telemetry(self, task_list: List[SweepTask]) -> List[SweepResult]:
        """The instrumented run path: identical results, stamped phases.

        Uses ``apply_async`` (one submission per task, still in-order
        collection) instead of ``pool.map`` so each task gets its own
        submit and ready timestamps; the uninstrumented path stays the
        benchmarked ``pool.map`` loop.
        """
        wall_start = time.monotonic()
        telemetry = SweepTelemetry(
            workers=max(1, self.workers),
            start_method=self.start_method or "",
            chunksize=self.chunksize,
        )
        if self.workers <= 1 or len(task_list) <= 1:
            results = []
            pid = os.getpid()
            for task in task_list:
                result, _, start, end, execute_s = run_task_timed(task)
                results.append(result)
                telemetry.tasks.append(
                    TaskTiming(
                        name=task.name,
                        worker=pid,
                        serialize_s=0.0,
                        dispatch_s=0.0,
                        execute_s=execute_s,
                        merge_s=max(0.0, (end - start) - execute_s),
                    )
                )
            telemetry.workers = 1
            telemetry.wall_s = time.monotonic() - wall_start
            self.last_telemetry = telemetry
            return results
        telemetry.workers = (
            self.workers if self.persistent_pool
            else min(self.workers, len(task_list))
        )
        pool, reused, startup_s = self._acquire_pool(len(task_list))
        telemetry.pool_reused = reused
        telemetry.pool_startup_s = startup_s
        try:
            ready_mono: Dict[int, float] = {}

            def _make_callback(position: int):
                def _on_ready(_result) -> None:
                    # Runs in the parent's result-handler thread the
                    # moment the reply is unpickled.
                    ready_mono[position] = time.monotonic()

                return _on_ready

            serialize_s: List[float] = []
            submit_mono: List[float] = []
            handles = []
            for position, task in enumerate(task_list):
                pickle_start = time.perf_counter()
                pickle.dumps(task)
                serialize_s.append(time.perf_counter() - pickle_start)
                submit_mono.append(time.monotonic())
                handles.append(
                    pool.apply_async(
                        run_task_timed,
                        (task,),
                        callback=_make_callback(position),
                    )
                )
            results = []
            for position, (task, handle) in enumerate(zip(task_list, handles)):
                result, pid, start, end, execute_s = handle.get()
                results.append(result)
                ready = ready_mono.get(position, end)
                telemetry.tasks.append(
                    TaskTiming(
                        name=task.name,
                        worker=pid,
                        serialize_s=serialize_s[position],
                        dispatch_s=max(0.0, start - submit_mono[position]),
                        execute_s=execute_s,
                        merge_s=max(0.0, ready - end),
                    )
                )
        finally:
            if not self.persistent_pool:
                pool.terminate()
                pool.join()
        telemetry.wall_s = time.monotonic() - wall_start
        self.last_telemetry = telemetry
        return results

    def verify(
        self,
        results: Sequence[SweepResult],
        sample: int = 3,
        root_seed: int = 0,
    ) -> List[Tuple[SweepResult, SweepResult]]:
        """Replay a deterministic sample serially; return mismatches.

        Each sampled task re-runs in *this* process from its recorded
        seed; its payload digest must equal the one the (possibly
        parallel) run produced.  Returns ``(original, replay)`` pairs
        that disagreed -- empty means the sampled equivalence held.
        """
        if not results:
            return []
        rng = derived_stream("exec/verify", root_seed)
        count = min(sample, len(results))
        picks = sorted(rng.sample(range(len(results)), count))
        mismatches: List[Tuple[SweepResult, SweepResult]] = []
        for position in picks:
            original = results[position]
            replay = run_task(original.task)
            if replay.digest != original.digest:
                mismatches.append((original, replay))
        return mismatches
