"""Named experiment drivers for the sweep engine.

A driver is a function ``(params, seed) -> payload`` that builds a
fresh simulated world from its task seed, runs one experiment point, and
returns a plain-data payload (JSON-able scalars and lists only -- the
payload is content-digested to prove parallel/serial equivalence, and it
crosses process boundaries).

Workers invoke drivers *by name*: a :class:`~repro.exec.engine.SweepTask`
carries only strings and numbers, so it pickles under any multiprocessing
start method, and each worker resolves the callable from this registry
locally.  Register custom drivers with the :func:`driver` decorator
before building tasks.
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, Dict, Mapping

from repro.sim.random import derived_stream

Driver = Callable[[Mapping[str, Any], int], Dict[str, Any]]

DRIVERS: Dict[str, Driver] = {}


def driver(name: str) -> Callable[[Driver], Driver]:
    """Register ``fn`` as the driver for ``name`` (decorator)."""

    def register(fn: Driver) -> Driver:
        if name in DRIVERS:
            raise ValueError(f"driver {name!r} already registered")
        DRIVERS[name] = fn
        return fn

    return register


def get_driver(name: str) -> Driver:
    try:
        return DRIVERS[name]
    except KeyError:
        raise KeyError(
            f"unknown driver {name!r}; registered: {sorted(DRIVERS)}"
        ) from None


# ======================================================================
# built-in drivers
# ======================================================================
@driver("fabric")
def run_fabric_point(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """One switch-fabric saturation point: VOQ + bitmask PIM under
    Bernoulli-uniform load.  Params: ``n_ports``, ``load``, ``slots``."""
    from repro.core.matching.bitmask import BitmaskPim
    from repro.switch.fabric import VoqFabric, run_fabric
    from repro.traffic.arrivals import BernoulliUniform

    n_ports = int(params.get("n_ports", 16))
    load = float(params.get("load", 0.9))
    slots = int(params.get("slots", 2_000))
    fabric = VoqFabric(
        n_ports,
        BitmaskPim(
            n_ports,
            iterations=3,
            rng=derived_stream("exec/fabric/match", seed),
        ),
    )
    traffic = BernoulliUniform(
        n_ports, load, rng=derived_stream("exec/fabric/arrivals", seed)
    )
    metrics = run_fabric(fabric, traffic, slots, warmup_slots=slots // 10)
    # Fold the full per-pair delivery map, not just the totals: two runs
    # that merely agree on throughput but routed cells differently must
    # digest differently.
    folded = hashlib.sha256()
    for pair in sorted(metrics.delivered_per_pair):
        folded.update(
            f"{pair[0]}:{pair[1]}={metrics.delivered_per_pair[pair]};".encode()
        )
    return {
        "offered": metrics.cells_offered,
        "delivered": metrics.cells_delivered,
        "utilization": round(metrics.utilization(n_ports), 9),
        "mean_latency_slots": (
            round(metrics.latency.mean, 9) if metrics.latency.count else 0.0
        ),
        "checksum": folded.hexdigest(),
    }


@driver("digest")
def run_digest_point(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """The canonical replay scenario, reduced to its run digest.

    The strongest equivalence check a worker can produce: the digest
    folds the full event dispatch order of a booted, converged,
    traffic-carrying network.  Params: ``duration_us``.
    """
    from repro.conform.digest import digest_scenario

    duration_us = float(params.get("duration_us", 80_000.0))
    return {
        "digest": digest_scenario(seed, duration_us=duration_us),
        "duration_us": duration_us,
    }


@driver("scenario")
def run_scenario_point(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """One canned fault scenario; payload carries the invariant verdicts.
    Params: ``name`` in {pull_the_plug, flapping_link, credit_loss}."""
    from repro.faults.runner import run_scenario
    from repro.faults.scenarios import (
        build_credit_loss,
        build_flapping_link,
        build_pull_the_plug,
    )

    builders = {
        "pull_the_plug": build_pull_the_plug,
        "flapping_link": build_flapping_link,
        "credit_loss": build_credit_loss,
    }
    name = str(params.get("name", "pull_the_plug"))
    net, plan, loads = builders[name](seed)
    result = run_scenario(net, plan, loads)
    return {
        "scenario": name,
        "passed": result.passed,
        "invariants": [
            [inv.name, inv.passed] for inv in result.invariants
        ],
        "delivered": result.delivered,
        "faults_applied": result.faults_applied,
    }
