"""Parallel deterministic experiment execution.

The sweep engine fans a grid of experiment points (and repeated seeds)
across worker processes while keeping every task bit-reproducible: a
task's randomness is a pure function of ``(root seed, task name)``, each
worker builds its own simulated world from that seed (workers never
share a :class:`~repro.sim.kernel.Simulator`), and result payloads carry
content digests so a parallel run can be *proved* equal to a serial one
by replaying sampled tasks.
"""

from repro.exec.drivers import DRIVERS, driver, get_driver
from repro.exec.engine import (
    SweepEngine,
    SweepResult,
    SweepTask,
    SweepTelemetry,
    TaskTiming,
    make_tasks,
    payload_digest,
    run_task,
    run_task_timed,
)

__all__ = [
    "DRIVERS",
    "SweepEngine",
    "SweepResult",
    "SweepTask",
    "SweepTelemetry",
    "TaskTiming",
    "driver",
    "get_driver",
    "make_tasks",
    "payload_digest",
    "run_task",
    "run_task_timed",
]
