"""Uniform paper-vs-measured reporting for the benchmark suite.

Every benchmark builds an :class:`ExperimentReport`: the experiment id
(DESIGN.md's E-numbers), the paper's claim, the measured value(s), and a
shape verdict.  Benchmarks print the report; EXPERIMENTS.md archives the
outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.tables import Table


@dataclass
class ClaimCheck:
    """One claim's expected-vs-measured line."""

    claim: str
    expected: str
    measured: str
    holds: Optional[bool] = None


@dataclass
class ExperimentReport:
    experiment_id: str
    title: str
    checks: List[ClaimCheck] = field(default_factory=list)
    tables: List[Table] = field(default_factory=list)

    def check(
        self,
        claim: str,
        expected: str,
        measured: str,
        holds: Optional[bool] = None,
    ) -> None:
        self.checks.append(ClaimCheck(claim, expected, measured, holds))

    def add_table(self, table: Table) -> None:
        self.tables.append(table)

    @property
    def all_hold(self) -> bool:
        return all(c.holds for c in self.checks if c.holds is not None)

    def render(self) -> str:
        lines = [f"== {self.experiment_id}: {self.title} =="]
        summary = Table(["claim", "paper", "measured", "holds"])
        for check in self.checks:
            verdict = (
                "-" if check.holds is None else ("yes" if check.holds else "NO")
            )
            summary.add_row(check.claim, check.expected, check.measured, verdict)
        lines.append(summary.render())
        for table in self.tables:
            lines.append("")
            lines.append(table.render())
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
