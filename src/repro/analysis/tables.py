"""Fixed-width table rendering for benchmark output.

The benchmark harness prints paper-vs-measured tables; this keeps them
aligned and dependency-free.
"""

from __future__ import annotations

from typing import Any, List, Sequence


class Table:
    """A simple left-padded text table."""

    def __init__(self, headers: Sequence[str], title: str = "") -> None:
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: List[List[str]] = []

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append([_format(c) for c in cells])

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines: List[str] = []
        if self.title:
            lines.append(self.title)
        lines.append(
            "  ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(
                "  ".join(c.ljust(w) for c, w in zip(row, widths))
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _format(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)
