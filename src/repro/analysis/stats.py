"""Small statistics helpers used by benchmarks and tests."""

from __future__ import annotations

import math
from typing import Sequence, Tuple


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of no values")
    return math.fsum(values) / len(values)


def stdev(values: Sequence[float]) -> float:
    """Unbiased sample standard deviation (0.0 for n < 2)."""
    n = len(values)
    if n < 2:
        return 0.0
    m = mean(values)
    return math.sqrt(math.fsum((v - m) ** 2 for v in values) / (n - 1))


def confidence_interval95(values: Sequence[float]) -> Tuple[float, float]:
    """Normal-approximation 95% CI for the mean."""
    m = mean(values)
    if len(values) < 2:
        return (m, m)
    half = 1.96 * stdev(values) / math.sqrt(len(values))
    return (m - half, m + half)


def coefficient_of_variation(values: Sequence[float]) -> float:
    m = mean(values)
    if m == 0:
        raise ValueError("CV undefined for zero mean")
    return stdev(values) / m


def jain_fairness(values: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly fair, 1/n = one flow hogs.

    Used by the starvation benchmark (E11) to summarize per-circuit
    service counts.
    """
    if not values:
        raise ValueError("fairness of no values")
    total = math.fsum(values)
    squares = math.fsum(v * v for v in values)
    if squares == 0:
        return 1.0
    return (total * total) / (len(values) * squares)
