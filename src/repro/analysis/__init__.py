"""Statistics helpers and benchmark-output formatting."""

from repro.analysis.stats import (
    coefficient_of_variation,
    confidence_interval95,
    jain_fairness,
    mean,
)
from repro.analysis.tables import Table
from repro.analysis.experiments import ExperimentReport

__all__ = [
    "ExperimentReport",
    "Table",
    "coefficient_of_variation",
    "confidence_interval95",
    "jain_fairness",
    "mean",
]
