"""Workload generators.

Slot-level cell arrival processes for the single-switch fabric
experiments (:mod:`repro.traffic.arrivals`), constant-bit-rate guaranteed
streams (:mod:`repro.traffic.cbr`), and host-level packet workloads
(:mod:`repro.traffic.workload`).
"""

from repro.traffic.arq import ArqTransfer
from repro.traffic.arrivals import (
    ArrivalProcess,
    BernoulliUniform,
    BurstyOnOff,
    Hotspot,
    Permutation,
    StarvationPattern,
)
from repro.traffic.cbr import CbrSource, interarrival_jitter, latency_jitter
from repro.traffic.workload import (
    FileTransferWorkload,
    PoissonPacketWorkload,
    RpcWorkload,
)

__all__ = [
    "ArqTransfer",
    "ArrivalProcess",
    "BernoulliUniform",
    "BurstyOnOff",
    "CbrSource",
    "FileTransferWorkload",
    "Hotspot",
    "Permutation",
    "PoissonPacketWorkload",
    "RpcWorkload",
    "StarvationPattern",
    "interarrival_jitter",
    "latency_jitter",
]
