"""Slot-level cell arrival processes for fabric experiments.

Section 3 evaluates schedulers under "a variety of cell arrival patterns";
the classic set (used in the companion ASPLOS'92 paper this section
summarizes) is:

- i.i.d. Bernoulli arrivals with uniform destinations -- the pattern under
  which FIFO input queueing saturates at 58%,
- bursty on/off sources (geometric burst lengths, one destination per
  burst) -- LAN-like traffic where "cells tend to arrive in bursts",
- hotspot/client-server patterns where many inputs favour one output,
- fixed permutations (no output conflicts: any work-conserving scheduler
  should achieve 100%),
- the paper's starvation pattern: input 1 always has cells for outputs 2
  and 3, input 4 always has cells for output 3.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.sim.random import derived_stream

Arrival = Tuple[int, int]  # (input port, output port)

# Deprecation note: every process used to fall back to a *shared*
# ``random.Random(0)``, so two default-constructed processes drew
# identical (perfectly correlated) arrival streams.  The fallback is now
# a per-class substream from :func:`repro.sim.random.derived_stream`;
# pass an explicit ``rng`` (unchanged signature) to control seeding.


class ArrivalProcess:
    """Base class: yields the cell arrivals for each slot."""

    def __init__(self, n_ports: int) -> None:
        if n_ports <= 0:
            raise ValueError(f"n_ports must be positive, got {n_ports}")
        self.n_ports = n_ports

    def arrivals(self, slot: int) -> List[Arrival]:
        """Cells arriving at the start of ``slot``."""
        raise NotImplementedError

    @property
    def offered_load(self) -> float:
        """Average cells per input per slot this process generates."""
        raise NotImplementedError


class BernoulliUniform(ArrivalProcess):
    """Each input receives a cell with probability ``load``; destination
    uniform over all outputs (independently per cell)."""

    def __init__(
        self, n_ports: int, load: float, rng: Optional[random.Random] = None
    ) -> None:
        super().__init__(n_ports)
        if not 0.0 <= load <= 1.0:
            raise ValueError(f"load {load} out of [0, 1]")
        self.load = load
        self.rng = rng if rng is not None else derived_stream("arrivals.bernoulli")

    @property
    def offered_load(self) -> float:
        return self.load

    def arrivals(self, slot: int) -> List[Arrival]:
        cells: List[Arrival] = []
        for input_port in range(self.n_ports):
            if self.rng.random() < self.load:
                cells.append((input_port, self.rng.randrange(self.n_ports)))
        return cells


class Hotspot(ArrivalProcess):
    """Uniform arrivals, but a fraction of cells target one hot output."""

    def __init__(
        self,
        n_ports: int,
        load: float,
        hot_output: int = 0,
        hot_fraction: float = 0.5,
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__(n_ports)
        if not 0.0 <= load <= 1.0:
            raise ValueError(f"load {load} out of [0, 1]")
        if not 0.0 <= hot_fraction <= 1.0:
            raise ValueError(f"hot_fraction {hot_fraction} out of [0, 1]")
        if not 0 <= hot_output < n_ports:
            raise ValueError(f"hot output {hot_output} out of range")
        self.load = load
        self.hot_output = hot_output
        self.hot_fraction = hot_fraction
        self.rng = rng if rng is not None else derived_stream("arrivals.hotspot")

    @property
    def offered_load(self) -> float:
        return self.load

    def arrivals(self, slot: int) -> List[Arrival]:
        cells: List[Arrival] = []
        for input_port in range(self.n_ports):
            if self.rng.random() >= self.load:
                continue
            if self.rng.random() < self.hot_fraction:
                cells.append((input_port, self.hot_output))
            else:
                cells.append((input_port, self.rng.randrange(self.n_ports)))
        return cells


class BurstyOnOff(ArrivalProcess):
    """Per-input on/off bursts; all cells of a burst share a destination.

    Burst and idle lengths are geometric.  ``mean_burst`` sets the average
    on-period in cells; the idle period mean is derived so the long-run
    load equals ``load``.
    """

    def __init__(
        self,
        n_ports: int,
        load: float,
        mean_burst: float = 16.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__(n_ports)
        if not 0.0 < load <= 1.0:
            raise ValueError(f"load {load} out of (0, 1]")
        if mean_burst < 1.0:
            raise ValueError(f"mean_burst {mean_burst} must be >= 1")
        self.load = load
        self.mean_burst = mean_burst
        self.rng = rng if rng is not None else derived_stream("arrivals.bursty")
        # Geometric parameters: P(end of burst) per slot while on, and
        # P(start of burst) per slot while off.  With mean on-length B and
        # mean off-length I, load = B / (B + I)  =>  I = B (1-load)/load.
        self._p_end = 1.0 / mean_burst
        mean_idle = mean_burst * (1.0 - load) / load if load < 1.0 else 0.0
        self._p_start = 1.0 if mean_idle == 0 else min(1.0, 1.0 / mean_idle)
        self._on: List[bool] = [False] * n_ports
        self._dest: List[int] = [0] * n_ports

    @property
    def offered_load(self) -> float:
        return self.load

    def arrivals(self, slot: int) -> List[Arrival]:
        cells: List[Arrival] = []
        for input_port in range(self.n_ports):
            if self._on[input_port]:
                cells.append((input_port, self._dest[input_port]))
                if self.rng.random() < self._p_end:
                    self._on[input_port] = False
            else:
                if self.rng.random() < self._p_start:
                    self._on[input_port] = True
                    self._dest[input_port] = self.rng.randrange(self.n_ports)
                    cells.append((input_port, self._dest[input_port]))
                    if self.rng.random() < self._p_end:
                        self._on[input_port] = False
        return cells


class Permutation(ArrivalProcess):
    """Each input sends only to one fixed output (no output conflicts)."""

    def __init__(
        self,
        n_ports: int,
        load: float,
        mapping: Optional[Sequence[int]] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__(n_ports)
        if not 0.0 <= load <= 1.0:
            raise ValueError(f"load {load} out of [0, 1]")
        self.load = load
        self.rng = rng if rng is not None else derived_stream("arrivals.permutation")
        if mapping is None:
            outputs = list(range(n_ports))
            self.rng.shuffle(outputs)
            mapping = outputs
        if sorted(mapping) != list(range(n_ports)):
            raise ValueError("mapping must be a permutation of the outputs")
        self.mapping = list(mapping)

    @property
    def offered_load(self) -> float:
        return self.load

    def arrivals(self, slot: int) -> List[Arrival]:
        return [
            (input_port, self.mapping[input_port])
            for input_port in range(self.n_ports)
            if self.rng.random() < self.load
        ]


class StarvationPattern(ArrivalProcess):
    """The paper's maximum-matching starvation example (section 3).

    "Suppose input 1 consistently has cells for outputs 2 and 3, and input
    4 consistently has cells for output 3.  The maximum match always pairs
    input 1 with output 2 and input 4 with output 3" -- starving the
    circuit from input 1 to output 3.  Every slot, input 1 receives one
    cell for output 2 and one for output 3, and input 4 one cell for
    output 3.
    """

    def __init__(self, n_ports: int = 16) -> None:
        super().__init__(n_ports)
        if n_ports < 5:
            raise ValueError("pattern uses ports 1..4; need n_ports >= 5")

    @property
    def offered_load(self) -> float:
        # Three cells per slot over n_ports inputs.
        return 3.0 / self.n_ports

    def arrivals(self, slot: int) -> List[Arrival]:
        return [(1, 2), (1, 3), (4, 3)]
