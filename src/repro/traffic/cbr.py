"""Constant-bit-rate sources and jitter measurement for guaranteed VCs.

Guaranteed streams model the paper's multi-media motivation: a source
producing cells at exactly its reserved rate.  The host controller's
pacer enforces the rate ("The network controller prevents a host from
sending more than its reserved bandwidth"); the source just keeps the
circuit's queue non-empty for the duration of the stream.
"""

from __future__ import annotations

from typing import List, Optional

from repro._types import VcId
from repro.net.host import Host


class CbrSource:
    """Feeds a guaranteed circuit for a fixed number of cells."""

    def __init__(self, host: Host, vc: VcId) -> None:
        self.host = host
        self.vc = vc
        self.cells_requested = 0

    def stream(self, cells: int) -> None:
        """Queue ``cells`` single-cell payloads; the pacer spaces them at
        the reserved rate."""
        if cells <= 0:
            raise ValueError(f"cells must be positive, got {cells}")
        self.cells_requested += cells
        self.host.send_raw_cells(self.vc, cells)


def interarrival_jitter(arrivals: List[float]) -> Optional[float]:
    """Max deviation of inter-arrival times from their mean, in us.

    The receiver-side jitter metric for CBR streams; ``None`` with fewer
    than three arrivals.
    """
    if len(arrivals) < 3:
        return None
    gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
    mean_gap = sum(gaps) / len(gaps)
    return max(abs(g - mean_gap) for g in gaps)


def latency_jitter(latencies: List[float]) -> Optional[float]:
    """Spread between the fastest and slowest cell: the delay-variation
    the p*(2f+l) analysis bounds."""
    if len(latencies) < 2:
        return None
    return max(latencies) - min(latencies)
