"""Host-level packet workloads.

The paper's examples of best-effort applications: "File transfers and
remote-procedure call are examples of applications where best-effort
scheduling is most appropriate" (section 1).  These drivers run on top of
established circuits and produce the packet streams the integration tests
and examples measure.
"""

from __future__ import annotations

import random
from typing import Optional

from repro._types import NodeId, VcId
from repro.net.host import Host
from repro.net.packet import Packet
from repro.sim.kernel import Simulator
from repro.sim.random import derived_stream


class FileTransferWorkload:
    """A bulk transfer: ``n_packets`` of ``packet_bytes`` back to back."""

    def __init__(
        self,
        host: Host,
        vc: VcId,
        destination: NodeId,
        n_packets: int = 100,
        packet_bytes: int = 1500,
    ) -> None:
        self.host = host
        self.vc = vc
        self.destination = destination
        self.n_packets = n_packets
        self.packet_bytes = packet_bytes
        self.packets_sent = 0

    def start(self) -> None:
        for _ in range(self.n_packets):
            self.host.send_packet(
                self.vc,
                Packet(
                    source=self.host.node_id,
                    destination=self.destination,
                    payload=b"\x00" * 0,
                    size=self.packet_bytes,
                ),
            )
            self.packets_sent += 1


class RpcWorkload:
    """Closed-loop request/response pairs: the paper's RPC example.

    The client sends a request packet on the forward circuit; when the
    server host delivers it, the server side immediately answers on the
    reverse circuit; the client measures the round trip and (after
    ``think_time_us``) issues the next call.
    """

    def __init__(
        self,
        sim: Simulator,
        client: Host,
        server: Host,
        request_vc: VcId,
        response_vc: VcId,
        n_calls: int = 50,
        request_bytes: int = 96,
        response_bytes: int = 480,
        think_time_us: float = 0.0,
    ) -> None:
        if n_calls < 1:
            raise ValueError(f"n_calls must be >= 1, got {n_calls}")
        self.sim = sim
        self.client = client
        self.server = server
        self.request_vc = request_vc
        self.response_vc = response_vc
        self.n_calls = n_calls
        self.request_bytes = request_bytes
        self.response_bytes = response_bytes
        self.think_time_us = think_time_us
        self.calls_completed = 0
        self.rtts: list = []
        self._call_started_at: Optional[float] = None
        self._started = False

    @property
    def done(self) -> bool:
        return self.calls_completed >= self.n_calls

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.server.packet_delivered.subscribe(self._serve)
        self.client.packet_delivered.subscribe(self._complete)
        self._issue()

    def _issue(self) -> None:
        self._call_started_at = self.sim.now
        self.client.send_packet(
            self.request_vc,
            Packet(
                source=self.client.node_id,
                destination=self.server.node_id,
                size=self.request_bytes,
            ),
        )

    def _serve(self, packet: Packet) -> None:
        if packet.source != self.client.node_id:
            return
        self.server.send_packet(
            self.response_vc,
            Packet(
                source=self.server.node_id,
                destination=self.client.node_id,
                size=self.response_bytes,
            ),
        )

    def _complete(self, packet: Packet) -> None:
        if packet.source != self.server.node_id:
            return
        if self._call_started_at is None:
            return
        self.rtts.append(self.sim.now - self._call_started_at)
        self._call_started_at = None
        self.calls_completed += 1
        if not self.done:
            self.sim.schedule(self.think_time_us, self._issue)


class PoissonPacketWorkload:
    """Open-loop packets with exponential inter-arrival times."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        vc: VcId,
        destination: NodeId,
        mean_interval_us: float = 1_000.0,
        packet_bytes: int = 576,
        rng: Optional[random.Random] = None,
        duration_us: Optional[float] = None,
    ) -> None:
        if mean_interval_us <= 0:
            raise ValueError("mean interval must be positive")
        self.sim = sim
        self.host = host
        self.vc = vc
        self.destination = destination
        self.mean_interval_us = mean_interval_us
        self.packet_bytes = packet_bytes
        # Deprecation note: the old fallback was a shared random.Random(0)
        # -- every default-constructed Poisson source emitted the *same*
        # inter-arrival sequence.  Now a per-source substream keyed by
        # (host, vc); pass an explicit ``rng`` to control seeding.
        self.rng = (
            rng
            if rng is not None
            else derived_stream(f"workload.poisson/{host.node_id}/{vc}")
        )
        self.duration_us = duration_us
        self.packets_sent = 0
        self._stop_at: Optional[float] = None

    def start(self) -> None:
        if self.duration_us is not None:
            self._stop_at = self.sim.now + self.duration_us
        self.sim.schedule(
            self.rng.expovariate(1.0 / self.mean_interval_us), self._emit
        )

    def stop(self) -> None:
        self._stop_at = self.sim.now

    def _emit(self) -> None:
        if self._stop_at is not None and self.sim.now >= self._stop_at:
            return
        self.host.send_packet(
            self.vc,
            Packet(
                source=self.host.node_id,
                destination=self.destination,
                size=self.packet_bytes,
            ),
        )
        self.packets_sent += 1
        self.sim.schedule(
            self.rng.expovariate(1.0 / self.mean_interval_us), self._emit
        )
