"""Host-level retransmission over a lossy (drop-mode) network.

Section 5 lists three ways to handle buffer pressure; the third is
"drop messages when buffer capacity is exceeded.  If messages are
dropped, they are typically retransmitted by higher levels of the
system."  AN2 rejected this for best-effort traffic in favour of
credits; this module supplies the rejected alternative so the A6
ablation can measure what AN2 avoided: retransmission waste and
timeout-bound latency under congestion.

:class:`ArqTransfer` is a go-back-N sender/receiver pair over a forward
data circuit and a reverse ack circuit.  Sequence numbers ride in the
packet payload; the receiver delivers in order and returns cumulative
acks; the sender slides its window on acks and retransmits from the
base on timeout.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro._types import VcId
from repro.net.host import Host
from repro.net.packet import Packet
from repro.sim.kernel import Event, Simulator

_HEADER = struct.Struct("!IQ")  # kind marker + sequence number
_DATA_MARK = 0xDA7A
_ACK_MARK = 0xACC0


def _frame(mark: int, seq: int, body_bytes: int) -> bytes:
    return _HEADER.pack(mark, seq) + b"\x00" * max(
        0, body_bytes - _HEADER.size
    )


def _parse(payload: bytes):
    if len(payload) < _HEADER.size:
        return None
    mark, seq = _HEADER.unpack_from(payload)
    if mark not in (_DATA_MARK, _ACK_MARK):
        return None
    return mark, seq


class ArqTransfer:
    """A reliable go-back-N transfer between two hosts.

    Args:
        sim: the simulator both hosts live in.
        sender / receiver: the host controllers.
        data_vc: established circuit sender -> receiver.
        ack_vc: established circuit receiver -> sender.
        n_packets: how many packets to move.
        packet_bytes: size of each data packet.
        window: go-back-N window in packets.
        timeout_us: retransmission timeout.
        max_retries: consecutive timeout rounds tolerated without any
            ack progress before the transfer enters the terminal
            ``failed`` state (``None`` = retry forever, the historical
            behavior -- which spins the kernel when the receiver is
            unreachable).
        backoff: multiplier applied to the retransmission timeout after
            each fruitless round (1.0 = fixed interval); reset to
            ``timeout_us`` whenever an ack advances the window.
        pacing_us: minimum spacing between FIRST transmissions of
            successive sequences (0 = send as fast as the window
            allows).  Scenario comparisons set this to the raw load's
            send interval so ARQ carries the same offered load over the
            same span instead of blasting the transfer before the fault
            window opens.  Timeout retransmissions are not paced:
            go-back-N resends its whole outstanding window.
    """

    def __init__(
        self,
        sim: Simulator,
        sender: Host,
        receiver: Host,
        data_vc: VcId,
        ack_vc: VcId,
        n_packets: int,
        packet_bytes: int = 960,
        window: int = 8,
        timeout_us: float = 2_000.0,
        max_retries: Optional[int] = None,
        backoff: float = 1.0,
        pacing_us: float = 0.0,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if n_packets < 1:
            raise ValueError(f"n_packets must be >= 1, got {n_packets}")
        if max_retries is not None and max_retries < 1:
            raise ValueError(f"max_retries must be >= 1, got {max_retries}")
        if backoff < 1.0:
            raise ValueError(f"backoff must be >= 1.0, got {backoff}")
        if pacing_us < 0.0:
            raise ValueError(f"pacing_us must be >= 0, got {pacing_us}")
        self.sim = sim
        self.sender = sender
        self.receiver = receiver
        self.data_vc = data_vc
        self.ack_vc = ack_vc
        self.n_packets = n_packets
        self.packet_bytes = max(packet_bytes, _HEADER.size)
        self.window = window
        self.timeout_us = timeout_us
        self.max_retries = max_retries
        self.backoff = backoff
        self.pacing_us = pacing_us
        # Sender state.
        self._next_send_at = 0.0
        self._pace_event: Optional[Event] = None
        self.base = 0
        self.next_seq = 0
        self.packets_transmitted = 0  # includes retransmissions
        self.retransmissions = 0
        self.timeouts = 0
        #: terminal state: ``max_retries`` consecutive timeout rounds
        #: passed without ack progress; no further events are scheduled.
        self.failed = False
        self._consecutive_timeouts = 0
        self._current_timeout_us = timeout_us
        self._timer: Optional[Event] = None
        # Receiver state.
        self.expected = 0
        self.delivered = 0
        self.completed_at: Optional[float] = None
        self._started = False

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self.delivered >= self.n_packets

    @property
    def efficiency(self) -> float:
        """Useful packets / packets put on the wire (1.0 = no waste)."""
        if self.packets_transmitted == 0:
            return 0.0
        return self.n_packets / self.packets_transmitted

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.receiver.packet_delivered.subscribe(self._on_receiver_packet)
        self.sender.packet_delivered.subscribe(self._on_sender_packet)
        self._fill_window()

    # ------------------------------------------------------------------
    # sender side
    # ------------------------------------------------------------------
    def _fill_window(self) -> None:
        while (
            self.next_seq < self.base + self.window
            and self.next_seq < self.n_packets
        ):
            if self.pacing_us > 0.0:
                now = self.sim.now
                if now < self._next_send_at:
                    if self._pace_event is None:
                        self._pace_event = self.sim.schedule(
                            self._next_send_at - now, self._pace_fire
                        )
                    break
                self._next_send_at = now + self.pacing_us
            self._transmit(self.next_seq)
            self.next_seq += 1
        self._arm_timer()

    def _pace_fire(self) -> None:
        self._pace_event = None
        if not self.failed:
            self._fill_window()

    def _transmit(self, seq: int) -> None:
        self.packets_transmitted += 1
        self.sender.send_packet(
            self.data_vc,
            Packet(
                source=self.sender.node_id,
                destination=self.receiver.node_id,
                payload=_frame(_DATA_MARK, seq, self.packet_bytes),
            ),
        )

    def _arm_timer(self) -> None:
        self._cancel_timer()
        # Only while packets are outstanding: a paced sender between
        # sends has nothing to retransmit, and counting timeouts there
        # would burn the retry budget on idle gaps.
        if self.base < self.next_seq and not self.failed:
            self._timer = self.sim.schedule(
                self._current_timeout_us, self._timeout
            )

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _timeout(self) -> None:
        self._timer = None
        if self.base >= self.n_packets or self.failed:
            return
        if (
            self.max_retries is not None
            and self._consecutive_timeouts >= self.max_retries
        ):
            # Terminal: the receiver is unreachable; stop rather than
            # retransmit the window forever at a fixed interval.
            self.failed = True
            if self._pace_event is not None:
                self._pace_event.cancel()
                self._pace_event = None
            return
        self.timeouts += 1
        self._consecutive_timeouts += 1
        self._current_timeout_us *= self.backoff
        # Go-back-N: retransmit the whole outstanding window.
        for seq in range(self.base, self.next_seq):
            self.retransmissions += 1
            self._transmit(seq)
        self._arm_timer()

    def _on_sender_packet(self, packet: Packet) -> None:
        """An ack packet arrived back at the sender."""
        parsed = _parse(packet.payload)
        if parsed is None:
            return
        mark, ack_seq = parsed
        # The parsed mark is a fresh int well outside CPython's small-int
        # cache, so an identity comparison against _ACK_MARK would always
        # be False; equality is the whole check.
        if mark != _ACK_MARK:
            return
        if self.failed:
            return
        if ack_seq + 1 > self.base:
            self.base = ack_seq + 1
            self._consecutive_timeouts = 0
            self._current_timeout_us = self.timeout_us
            self._fill_window()
            if self.base >= self.n_packets:
                self._cancel_timer()

    # ------------------------------------------------------------------
    # receiver side
    # ------------------------------------------------------------------
    def _on_receiver_packet(self, packet: Packet) -> None:
        parsed = _parse(packet.payload)
        if parsed is None:
            return
        mark, seq = parsed
        if mark != _DATA_MARK:
            return
        if seq == self.expected:
            self.expected += 1
            self.delivered += 1
            if self.done and self.completed_at is None:
                self.completed_at = self.sim.now
        # Cumulative ack for the last in-order packet (or nothing yet).
        if self.expected > 0:
            self.receiver.send_packet(
                self.ack_vc,
                Packet(
                    source=self.receiver.node_id,
                    destination=self.sender.node_id,
                    payload=_frame(_ACK_MARK, self.expected - 1, _HEADER.size),
                ),
            )
