# AN2 reproduction -- convenience targets.

PYTHON ?= python

.PHONY: install test bench bench-speed speed-smoke solutions-smoke topo-smoke fastpath-demo sweep examples all clean

install:
	pip install -e .

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Wall-clock regression gate: fails if any frozen speed workload runs
# >25% slower than the committed BENCH_speed.json baseline; skips
# cleanly when no baseline exists.
bench-speed:
	$(PYTHON) tools/run_speed_bench.py --check

# The CI smoke subset: quick workloads only, explicit baseline, percent
# tolerance, missing baseline is an error.
speed-smoke:
	$(PYTHON) tools/run_speed_bench.py --compare BENCH_speed.json --quick --tolerance 60 --repeats 2

# Loss-recovery solutions gate (EXPERIMENTS A6): the canned
# corruption-burst scenario across all four solutions, every recovery
# invariant checked, plus the acceptance comparison (link_retx must use
# strictly fewer end-to-end retransmissions than e2e_arq on the same
# fault plan).  Exit non-zero on any failure.
solutions-smoke:
	$(PYTHON) tools/run_solutions.py corruption_burst --gate

# Topology-scale gate: structured fabric generation, one reconfiguration
# epoch, and incremental-vs-rebuild digest equality (exit non-zero on
# any divergence).
topo-smoke:
	$(PYTHON) tools/run_topo_smoke.py

# Whole-fabric slot engine at scale: every switch of a 320-switch
# fat-tree advanced scalar vs through the stacked engine; exit non-zero
# on any work-checksum mismatch (timings are informational).
fastpath-demo:
	$(PYTHON) tools/run_fastpath.py

# Parallel sweep with serial digest verification (exit non-zero on any
# parallel-vs-serial divergence).
sweep:
	$(PYTHON) tools/run_sweep.py --driver fabric --grid n_ports=8,16 --grid load=0.7,0.95 --repeats 2 --workers 4 --verify 3

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		$(PYTHON) $$script || exit 1; \
	done

all: test bench examples

clean:
	find . -type d -name __pycache__ -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis .benchmarks build *.egg-info
