# AN2 reproduction -- convenience targets.

PYTHON ?= python

.PHONY: install test bench bench-speed examples all clean

install:
	pip install -e .

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Wall-clock regression gate: fails if any frozen speed workload runs
# >25% slower than the committed BENCH_speed.json baseline; skips
# cleanly when no baseline exists.
bench-speed:
	$(PYTHON) tools/run_speed_bench.py --check

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		$(PYTHON) $$script || exit 1; \
	done

all: test bench examples

clean:
	find . -type d -name __pycache__ -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis .benchmarks build *.egg-info
