"""Setup shim.

Kept alongside ``pyproject.toml`` so that ``pip install -e .`` works in
offline environments whose setuptools lacks the ``wheel`` package needed
for PEP 660 editable builds.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
