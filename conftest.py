"""Repo-root pytest configuration.

Puts the repository root on sys.path so test modules can import shared
helpers as the ``tests`` package (e.g. ``from tests.conftest import
fast_switch_config``) regardless of whether pytest is launched as
``pytest`` or ``python -m pytest``.

Also defines ``--trace-out=DIR``: when given, every test runs inside a
``repro.obs`` capture, and any Network/An1Network built during the test
attaches the capture's tracer and contributes its metrics registry.  On
teardown the capture is written to ``DIR/<test>.trace.jsonl`` and
``DIR/<test>.metrics.json``, ready for ``tools/trace_report.py``.
"""

import os
import re
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))


def pytest_addoption(parser):
    parser.addoption(
        "--trace-out",
        action="store",
        default=None,
        metavar="DIR",
        help="capture an obs trace + metrics snapshot per test into DIR",
    )


def _safe_name(nodeid: str) -> str:
    return re.sub(r"[^A-Za-z0-9_.-]+", "_", nodeid)


@pytest.fixture(autouse=True)
def _trace_capture(request):
    out_dir = request.config.getoption("--trace-out")
    if not out_dir:
        yield
        return
    import json

    import repro.obs as obs

    os.makedirs(out_dir, exist_ok=True)
    base = os.path.join(out_dir, _safe_name(request.node.nodeid))
    cap = obs.begin_capture()
    try:
        yield
    finally:
        obs.end_capture()
        cap.tracer.write_jsonl(base + ".trace.jsonl")
        with open(base + ".metrics.json", "w", encoding="utf-8") as stream:
            json.dump(cap.snapshot(), stream, indent=2, sort_keys=True)
