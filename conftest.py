"""Repo-root pytest configuration.

Puts the repository root on sys.path so test modules can import shared
helpers as the ``tests`` package (e.g. ``from tests.conftest import
fast_switch_config``) regardless of whether pytest is launched as
``pytest`` or ``python -m pytest``.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
