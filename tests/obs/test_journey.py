"""Cell-journey tracing: per-hop causal records for sampled cells."""

import pytest

from repro.obs import Tracer

from tests.conftest import converged_line


def _journey_records(tracer):
    return [r for r in tracer.records if r.category == "journey"]


def _run_traffic(net, tracer, packets=4, journey_every=None):
    if journey_every is not None:
        tracer.journey_every = journey_every
    net.sim.tracer = tracer
    circuit = net.setup_circuit("h0", "h1")
    host = net.host("h0")
    from repro.net.packet import Packet

    for k in range(packets):
        host.send_packet(
            circuit.vc,
            Packet(
                source=host.node_id,
                destination=host.senders[circuit.vc].destination,
                payload=bytes(120),
            ),
        )
        net.run(2_000.0)
    net.run(20_000.0)
    return circuit


def test_journey_records_full_path():
    net = converged_line(3)
    tracer = Tracer()
    _run_traffic(net, tracer, packets=2)
    records = _journey_records(tracer)
    assert records, "no journey records captured"
    stages = {r.name for r in records}
    # the full host -> switch -> link -> host story, every stage present
    assert {"segment", "tx", "wire.arrive", "voq.enqueue", "grant",
            "deliver", "packet.done"} <= stages
    # every delivered packet reassembled
    assert len(net.host("h1").delivered) == 2


def test_journey_hop_counter_gives_causal_order():
    net = converged_line(3)
    tracer = Tracer()
    _run_traffic(net, tracer, packets=1)
    by_cell = {}
    for record in _journey_records(tracer):
        by_cell.setdefault(record.payload["cell"], []).append(record)
    assert by_cell
    for cell, records in by_cell.items():
        hops = [r.payload["hop"] for r in records]
        assert hops == sorted(hops), f"cell {cell} hops out of order"
        assert hops == list(range(1, len(hops) + 1))
        times = [r.time for r in records]
        assert times == sorted(times)
        # first hop is segmentation, last is delivery or packet completion
        assert records[0].name == "segment"
        assert records[-1].name in ("deliver", "packet.done")


def test_journey_sampling_every_n_packets():
    net = converged_line(3)
    tracer = Tracer()
    _run_traffic(net, tracer, packets=6, journey_every=3)
    packets = {r.payload["packet"] for r in _journey_records(tracer)}
    # 1-in-3 sampling over 6 packets: exactly 2 sampled
    assert len(packets) == 2
    # unsampled packets still delivered
    assert len(net.host("h1").delivered) == 6


def test_journey_disabled_category_attaches_nothing():
    net = converged_line(3)
    tracer = Tracer(categories=["reconfig"])  # journey NOT enabled
    _run_traffic(net, tracer, packets=2)
    assert not _journey_records(tracer)
    assert len(net.host("h1").delivered) == 2


def test_journey_every_validates():
    with pytest.raises(ValueError):
        Tracer(journey_every=0)
