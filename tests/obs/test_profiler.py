"""Deterministic subsystem profiler: dispatch attribution by callback."""

from repro.obs import SubsystemProfiler, Tracer
from repro.obs.profiler import classify_callback
from repro.sim.kernel import Simulator

from tests.conftest import converged_line


def test_classify_by_qualname_and_module():
    from repro.core.reconfig.monitor import PortMonitor
    from repro.switch.switch import AN2Switch

    assert classify_callback(AN2Switch._slot_tick) == "matcher"
    assert classify_callback(AN2Switch._resync_tick) == "flowcontrol"
    assert classify_callback(PortMonitor._send_ping) == "monitor"

    def local_callback() -> None:
        pass

    assert classify_callback(local_callback) == "other"


def test_profiler_counts_simple_callbacks():
    profiler = SubsystemProfiler()
    fired = []

    def tick() -> None:
        fired.append(1)

    profiler.dispatch(tick, ())
    profiler.dispatch(tick, ())
    assert fired == [1, 1]
    assert profiler.events == {"other": 2}
    assert profiler.total_events == 2


def test_profiler_attributes_a_network_run():
    net = converged_line(3)
    profiler = SubsystemProfiler()
    net.sim.profiler = profiler
    net.run(20_000.0)
    net.sim.profiler = None
    assert profiler.total_events > 0
    # a converged idle network is keepalive pings + their link transits
    assert "monitor" in profiler.events
    assert "links" in profiler.events
    report = profiler.report()
    assert "monitor" in report
    assert "%" in report


def test_profiler_counts_match_kernel_event_count():
    net = converged_line(3)
    before = net.sim.events_executed
    profiler = SubsystemProfiler()
    net.sim.profiler = profiler
    net.run(10_000.0)
    net.sim.profiler = None
    assert profiler.total_events == net.sim.events_executed - before


def test_profiler_is_digest_neutral():
    """Profiling must not change what the simulation does."""
    from repro.conform.digest import digest_scenario

    plain = digest_scenario(seed=3, duration_us=30_000.0)

    import repro.conform.digest as digest_mod
    import repro.sim.kernel as kernel_mod  # noqa: F401

    # Re-run the same scenario with a profiler attached from the start.
    from repro.net.host import HostConfig
    from repro.net.network import Network
    from repro.net.topology import Topology
    from repro.switch.switch import SwitchConfig
    from repro.traffic.workload import PoissonPacketWorkload

    topo = Topology.grid(2, 2)
    topo.add_host(0)
    topo.add_host(1)
    topo.connect("h0", "s0", port_a=0, bps=622_000_000)
    topo.connect("h0", "s2", port_a=1, bps=622_000_000)
    topo.connect("h1", "s3", port_a=0, bps=622_000_000)
    topo.connect("h1", "s1", port_a=1, bps=622_000_000)
    net = Network(
        topo,
        seed=3,
        switch_config=SwitchConfig(
            frame_slots=32, control_delay_us=10.0, ping_interval_us=500.0,
            ack_timeout_us=200.0, miss_threshold=2,
            boot_reconfig_delay_us=1_500.0, resync_interval_us=5_000.0,
        ),
        host_config=HostConfig(
            ping_interval_us=500.0, ack_timeout_us=200.0,
            miss_threshold=2, frame_slots=32,
        ),
    )
    digest = digest_mod.RunDigest()
    net.sim.digest = digest
    net.sim.profiler = SubsystemProfiler(wall_time=True)
    net.start()
    net.run_until(net.converged, timeout_us=30_000.0)
    circuit = net.setup_circuit("h0", "h1")
    workload = PoissonPacketWorkload(
        net.sim, net.host("h0"), circuit.vc, circuit.destination,
        mean_interval_us=400.0, packet_bytes=480,
        rng=net.streams.stream("conform.digest.workload"),
        duration_us=15_000.0,
    )
    workload.start()
    net.run(30_000.0)
    net.sim.digest = None
    digest.absorb("network-state", digest_mod.fingerprint_network(net))
    assert digest.hexdigest() == plain
    profiler = net.sim.profiler
    assert profiler.total_events > 0
    assert sum(profiler.wall_seconds.values()) > 0.0


def test_profiler_wall_time_mode():
    sim = Simulator()
    profiler = SubsystemProfiler(wall_time=True)
    sim.profiler = profiler
    for k in range(50):
        sim.schedule_at(float(k), lambda: None)
    sim.run()
    assert profiler.total_events == 50
    assert profiler.wall_seconds.get("other", 0.0) >= 0.0
    profiler.clear()
    assert profiler.total_events == 0


def test_profiler_composes_with_tracer():
    sim = Simulator()
    tracer = Tracer()
    profiler = SubsystemProfiler()
    sim.tracer = tracer
    sim.profiler = profiler
    sim.schedule_at(1.0, lambda: None)
    sim.run()
    assert profiler.total_events == 1
    assert any(r.category == "kernel" for r in tracer.records)
    # detaching both restores the uninstrumented class methods
    sim.tracer = None
    sim.profiler = None
    assert "step" not in sim.__dict__
    assert "run" not in sim.__dict__


def test_classify_fastpath_slot_driver():
    """The fabric slot driver's wave ticks get their own subsystem: a
    coalesced wave is fabric-advance work, not 'other' noise."""
    from repro.fastpath.driver import FabricSlotDriver

    assert classify_callback(FabricSlotDriver._fire) == "fastpath"


def test_profiler_attributes_driver_waves_on_a_network():
    from repro.net.network import Network
    from repro.net.topology import Topology
    from repro.traffic.workload import PoissonPacketWorkload

    from tests.conftest import fast_host_config, fast_switch_config

    topo = Topology.line(3)
    topo.add_host(0)
    topo.add_host(1)
    topo.connect("h0", "s0", port_a=0, bps=622_000_000)
    topo.connect("h1", "s2", port_a=0, bps=622_000_000)
    net = Network(
        topo,
        seed=1,
        switch_config=fast_switch_config(),
        host_config=fast_host_config(),
        fabric_slot_driver=True,
    )
    net.start()
    net.run_until_converged(timeout_us=500_000)
    circuit = net.setup_circuit("h0", "h1")
    workload = PoissonPacketWorkload(
        net.sim,
        net.host("h0"),
        circuit.vc,
        circuit.destination,
        mean_interval_us=200.0,
        packet_bytes=480,
        rng=net.streams.stream("test.profiler.workload"),
        duration_us=8_000.0,
    )
    profiler = SubsystemProfiler()
    waves_before = net.slot_driver.waves
    net.sim.profiler = profiler
    workload.start()
    net.run(16_000.0)
    net.sim.profiler = None
    assert profiler.events.get("fastpath", 0) > 0
    assert (
        profiler.events["fastpath"]
        == net.slot_driver.waves - waves_before
    )
