"""Tests for the hierarchical metrics registry."""

import json

import pytest

from repro.obs import MetricsRegistry
from repro.sim.monitor import ProbeSet


class TestNodes:
    def test_node_created_on_first_use_and_cached(self):
        registry = MetricsRegistry()
        node = registry.node("switch.3.fabric")
        assert isinstance(node, ProbeSet)
        assert registry.node("switch.3.fabric") is node
        assert "switch.3.fabric" in registry
        assert len(registry) == 1

    def test_invalid_paths_rejected(self):
        registry = MetricsRegistry()
        for bad in ("", ".", "a..b", "a."):
            with pytest.raises(ValueError):
                registry.node(bad)

    def test_probe_path_needs_node_and_name(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("lonely")


class TestProbes:
    def test_probe_addressing_reaches_node_probe(self):
        registry = MetricsRegistry()
        counter = registry.counter("switch.0.cells")
        counter.increment(7)
        assert registry.node("switch.0").counter("cells").value == 7

    def test_tally_and_gauge_through_registry(self):
        registry = MetricsRegistry()
        tally = registry.tally("host.h0.packet_latency")
        tally.extend([1.0, 2.0, 3.0])
        registry.gauge("host.h0.queued", lambda: 42)
        snap = registry.snapshot()["host.h0"]
        assert snap["tallies"]["packet_latency"]["count"] == 3
        assert snap["gauges"]["queued"] == 42

    def test_bounded_tally_via_registry(self):
        registry = MetricsRegistry()
        tally = registry.tally("f.latency", max_samples=8)
        tally.extend(float(i) for i in range(100))
        assert tally.bounded
        assert tally.count == 100
        assert len(tally.samples()) == 8


class TestSnapshot:
    def test_snapshot_sorted_and_json_round_trip(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("z.last.c").increment()
        registry.counter("a.first.c").increment(2)
        snap = registry.snapshot()
        assert list(snap) == ["a.first", "z.last"]
        path = tmp_path / "metrics.json"
        registry.write_json(path)
        with open(path) as stream:
            loaded = json.load(stream)
        assert loaded["a.first"]["counters"]["c"] == 2

    def test_reset_zeroes_probes_but_not_gauges(self):
        registry = MetricsRegistry()
        registry.counter("n.x.hits").increment(5)
        registry.tally("n.x.lat").record(1.0)
        registry.gauge("n.x.live", lambda: 99)
        registry.reset()
        snap = registry.snapshot()["n.x"]
        assert snap["counters"]["hits"] == 0
        assert snap["tallies"]["lat"] == {"count": 0}
        assert snap["gauges"]["live"] == 99
