"""Tests for the structured tracer."""

import json

import pytest

from repro.obs import Span, Tracer, read_jsonl


class TestEmit:
    def test_records_fields_in_order(self):
        tracer = Tracer()
        tracer.emit(1.0, "fabric", "s0", "match.round", matched=3)
        tracer.emit(2.0, "reconfig", "s1", "epoch.trigger")
        assert len(tracer) == 2
        first = tracer.records[0]
        assert first.time == 1.0
        assert first.category == "fabric"
        assert first.component == "s0"
        assert first.name == "match.round"
        assert first.payload == {"matched": 3}

    def test_category_filter_drops_silently(self):
        tracer = Tracer(categories=["reconfig"])
        tracer.emit(1.0, "kernel", "sim", "event")
        tracer.emit(2.0, "reconfig", "s0", "epoch.trigger")
        assert [r.category for r in tracer.records] == ["reconfig"]
        assert tracer.enabled("reconfig")
        assert not tracer.enabled("kernel")

    def test_max_records_counts_dropped(self):
        tracer = Tracer(max_records=2)
        for i in range(5):
            tracer.emit(float(i), "fabric", "f", "match.round")
        assert len(tracer) == 2
        assert tracer.dropped == 3

    def test_clear_resets_dropped(self):
        tracer = Tracer(max_records=1)
        tracer.emit(0.0, "a", "c", "x")
        tracer.emit(1.0, "a", "c", "y")
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped == 0

    def test_filter_by_fields(self):
        tracer = Tracer()
        tracer.emit(0.0, "flowcontrol", "s0.p1", "credit.grant", vc=5)
        tracer.emit(1.0, "flowcontrol", "s0.p2", "credit.grant", vc=6)
        tracer.emit(2.0, "flowcontrol", "s0.p1", "credit.stall")
        assert len(tracer.filter(category="flowcontrol")) == 3
        assert len(tracer.filter(component="s0.p1")) == 2
        grants = tracer.filter(name="credit.grant", component="s0.p1")
        assert [r.payload["vc"] for r in grants] == [5]


class TestSpan:
    def test_span_emits_begin_and_end_with_duration(self):
        tracer = Tracer()
        span = tracer.span(10.0, "reconfig", "s0", "epoch", tag="T1")
        assert isinstance(span, Span)
        span.end(35.0, edges=4)
        names = [r.name for r in tracer.records]
        assert names == ["epoch.begin", "epoch.end"]
        end = tracer.records[1]
        assert end.payload["duration"] == pytest.approx(25.0)
        assert end.payload["edges"] == 4

    def test_end_is_idempotent(self):
        tracer = Tracer()
        span = tracer.span(0.0, "reconfig", "s0", "epoch")
        span.end(1.0)
        span.end(2.0)
        assert len(tracer.filter(name="epoch.end")) == 1

    def test_abandoned_span_leaves_begin_without_end(self):
        tracer = Tracer()
        tracer.span(0.0, "reconfig", "s0", "epoch", tag="old")
        assert len(tracer.filter(name="epoch.begin")) == 1
        assert len(tracer.filter(name="epoch.end")) == 0


class TestJsonl:
    def test_round_trip(self, tmp_path):
        tracer = Tracer()
        tracer.emit(1.5, "fabric", "f", "match.round", matched=2, iterations=3)
        tracer.emit(2.0, "reconfig", "s0", "epoch.trigger", tag="E1")
        path = tmp_path / "trace.jsonl"
        written = tracer.write_jsonl(path)
        assert written == 2
        records = read_jsonl(path)
        assert records[0] == {
            "t": 1.5,
            "cat": "fabric",
            "comp": "f",
            "name": "match.round",
            "data": {"matched": 2, "iterations": 3},
        }
        assert records[1]["data"]["tag"] == "E1"

    def test_non_json_payloads_are_stringified(self, tmp_path):
        class Opaque:
            def __str__(self):
                return "opaque!"

        tracer = Tracer()
        tracer.emit(0.0, "a", "c", "x", obj=Opaque(), seq=(1, 2))
        path = tmp_path / "t.jsonl"
        tracer.write_jsonl(path)
        with open(path) as stream:
            data = json.loads(stream.readline())["data"]
        assert data["obj"] == "opaque!"
        assert data["seq"] == [1, 2]
