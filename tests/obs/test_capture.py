"""Tests for process-wide captures and their network integration."""

import repro.obs as obs
from repro.obs import Capture, MetricsRegistry, Tracer

from tests.conftest import line_with_hosts


class TestCaptureStack:
    def test_begin_end_round_trip(self):
        assert obs.active_capture() is None
        cap = obs.begin_capture()
        try:
            assert obs.active_capture() is cap
        finally:
            assert obs.end_capture() is cap
        assert obs.active_capture() is None

    def test_nested_capture_shadows_outer(self):
        outer = obs.begin_capture()
        try:
            inner = obs.begin_capture()
            assert obs.active_capture() is inner
            assert obs.end_capture() is inner
            assert obs.active_capture() is outer
        finally:
            obs.end_capture()

    def test_end_without_begin_returns_none(self):
        assert obs.end_capture() is None

    def test_context_manager(self):
        with obs.capture() as cap:
            assert obs.active_capture() is cap
        assert obs.active_capture() is None

    def test_custom_tracer_is_used(self):
        tracer = Tracer(categories=["reconfig"])
        with obs.capture(tracer) as cap:
            assert cap.tracer is tracer


class TestCaptureSnapshot:
    def test_adopt_deduplicates(self):
        cap = Capture()
        registry = MetricsRegistry()
        cap.adopt(registry)
        cap.adopt(registry)
        assert cap.registries == [registry]

    def test_single_registry_snapshot_unprefixed(self):
        cap = Capture()
        registry = MetricsRegistry()
        registry.counter("switch.0.cells").increment(3)
        cap.adopt(registry)
        assert cap.snapshot()["switch.0"]["counters"]["cells"] == 3

    def test_multiple_registries_get_net_prefix(self):
        cap = Capture()
        for value in (1, 2):
            registry = MetricsRegistry()
            registry.counter("switch.0.cells").increment(value)
            cap.adopt(registry)
        snap = cap.snapshot()
        assert snap["net0.switch.0"]["counters"]["cells"] == 1
        assert snap["net1.switch.0"]["counters"]["cells"] == 2


class TestNetworkIntegration:
    def test_network_built_in_capture_attaches_tracer_and_registry(self):
        with obs.capture() as cap:
            net = line_with_hosts(2)
        assert net.sim.tracer is cap.tracer
        assert net.registry in cap.registries
        # registry nodes were populated at construction time
        assert "switch.s0" in net.registry
        assert "host.h0" in net.registry

    def test_network_outside_capture_has_no_tracer(self):
        net = line_with_hosts(2)
        assert net.sim.tracer is None
        # the registry still exists for direct use
        assert net.metrics_snapshot()
