"""Flight recorder: bounded rings, dumps, and crash autopsy hooks."""

import json

import pytest

from repro.obs import FlightRecorder, next_dump_path, read_jsonl
from repro.sim.kernel import Simulator

from tests.conftest import converged_line


# ----------------------------------------------------------------------
# ring mechanics
# ----------------------------------------------------------------------
def test_rings_are_bounded_per_component():
    recorder = FlightRecorder(capacity=4)
    for k in range(10):
        recorder.record(float(k), "switch.s0", "event", k=k)
    recorder.record(0.5, "switch.s1", "other")
    assert recorder.records_total == 11
    assert len(recorder) == 5  # 4 retained for s0 + 1 for s1
    assert recorder.components() == ["switch.s0", "switch.s1"]
    rows = recorder.snapshot()
    s0_ks = [r["data"]["k"] for r in rows if r["comp"] == "switch.s0"]
    assert s0_ks == [6, 7, 8, 9]  # oldest evicted first


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)


def test_snapshot_is_time_ordered():
    recorder = FlightRecorder()
    recorder.record(3.0, "b", "late")
    recorder.record(1.0, "a", "early")
    recorder.record(2.0, "b", "middle")
    names = [r["name"] for r in recorder.snapshot()]
    assert names == ["early", "middle", "late"]


def test_dump_writes_meta_then_rows(tmp_path):
    recorder = FlightRecorder()
    recorder.record(1.0, "switch.s0", "epoch.join", tag="e1@s0")
    path = recorder.dump(tmp_path / "sub" / "flight.jsonl", reason="unit test")
    rows = read_jsonl(path)
    assert rows[0]["cat"] == "flight.meta"
    assert rows[0]["data"]["reason"] == "unit test"
    assert rows[0]["data"]["retained"] == 1
    assert rows[1]["cat"] == "flight"
    assert rows[1]["name"] == "epoch.join"


def test_next_dump_path_never_collides(tmp_path):
    first = next_dump_path(tmp_path, "x")
    second = next_dump_path(tmp_path, "x")
    assert first != second


# ----------------------------------------------------------------------
# kernel exception autopsy
# ----------------------------------------------------------------------
def _boom() -> None:
    raise RuntimeError("injected failure")


def test_kernel_exception_is_recorded_and_dumped(tmp_path):
    sim = Simulator()
    recorder = FlightRecorder()
    recorder.auto_dump_dir = str(tmp_path)
    sim.recorder = recorder
    sim.schedule_at(5.0, _boom)
    with pytest.raises(RuntimeError, match="injected failure"):
        sim.run()
    rows = [r for r in recorder.snapshot() if r["comp"] == "kernel"]
    assert rows and rows[0]["name"] == "exception"
    assert rows[0]["data"]["type"] == "RuntimeError"
    dumps = sorted(tmp_path.glob("flight-kernel-exception-*.jsonl"))
    assert len(dumps) == 1
    meta = json.loads(dumps[0].read_text().splitlines()[0])
    assert "RuntimeError" in meta["data"]["reason"]


def test_kernel_exception_with_instrumented_loop(tmp_path):
    """The dump trigger must also cover the tracer-swapped run loop."""
    from repro.obs import Tracer

    sim = Simulator()
    recorder = FlightRecorder()
    recorder.auto_dump_dir = str(tmp_path)
    sim.recorder = recorder
    sim.tracer = Tracer()
    sim.schedule_at(5.0, _boom)
    with pytest.raises(RuntimeError):
        sim.run()
    assert any(r["comp"] == "kernel" for r in recorder.snapshot())
    assert list(tmp_path.glob("flight-kernel-exception-*.jsonl"))


def test_kernel_exception_without_dump_dir_only_records():
    sim = Simulator()
    recorder = FlightRecorder()
    sim.recorder = recorder
    sim.schedule_at(5.0, _boom)
    with pytest.raises(RuntimeError):
        sim.run()
    assert any(r["comp"] == "kernel" for r in recorder.snapshot())


# ----------------------------------------------------------------------
# network integration: protocol transitions land in the rings
# ----------------------------------------------------------------------
def test_network_records_epochs_and_link_state():
    net = converged_line(3)
    assert net.recorder is net.sim.recorder
    components = set(net.recorder.components())
    assert any(c.startswith("switch.") for c in components)
    names = {r["name"] for r in net.recorder.snapshot()}
    assert "epoch.join" in names
    assert "epoch.done" in names


def test_network_records_skeptic_and_link_transitions():
    net = converged_line(3)
    net.link_between("s0", "s1").fail()
    net.run(60_000.0)
    rows = net.recorder.snapshot()
    names = {r["name"] for r in rows}
    assert "link.state" in names
    assert "skeptic.verdict" in names
