"""End-to-end: capture a reconfiguration experiment, render the report.

This is the acceptance path for the observability PR: a bench_e4-style
run (converge, crash a switch, reconfigure) captured with ``repro.obs``
must produce a trace that ``tools/trace_report.py`` renders as a
reconfiguration timeline plus a per-VC latency table.
"""

import json
import sys
from pathlib import Path

import pytest

import repro.obs as obs

from tests.conftest import line_with_hosts

TOOLS = Path(__file__).resolve().parents[2] / "tools"
if str(TOOLS) not in sys.path:
    sys.path.insert(0, str(TOOLS))

import trace_report  # noqa: E402


@pytest.fixture(scope="module")
def captured_run(tmp_path_factory):
    """Converge a 4-switch line, push traffic, crash an interior switch,
    reconfigure, and write the trace + metrics snapshot to disk."""
    out = tmp_path_factory.mktemp("trace")
    # keep the kernel firehose out so the protocol trace stays small
    tracer = obs.Tracer(categories=["reconfig", "flowcontrol", "fabric"])
    with obs.capture(tracer) as cap:
        net = line_with_hosts(4)
        net.start()
        net.run_until_converged(timeout_us=500_000)
        circuit = net.setup_circuit("h0", "h1")
        net.host("h0").send_raw_cells(circuit.vc, 40)
        net.run(5_000.0)
        net.crash_switch("s1")
        net.run_until(net.fully_reconfigured, timeout_us=1_000_000)
        trace_path = out / "run.trace.jsonl"
        metrics_path = out / "run.metrics.json"
        cap.tracer.write_jsonl(trace_path)
        with open(metrics_path, "w", encoding="utf-8") as stream:
            json.dump(cap.snapshot(), stream)
    return trace_path, metrics_path


def test_trace_contains_the_reconfiguration_story(captured_run):
    trace_path, _ = captured_run
    records = obs.read_jsonl(trace_path)
    names = {r["name"] for r in records}
    assert "epoch.trigger" in names
    assert "epoch.begin" in names
    assert "epoch.end" in names
    assert "skeptic.verdict" in names
    assert "monitor.timeout" in names  # the crashed switch's neighbours
    assert "credit.grant" in names
    # every record in this capture is protocol-level (kernel filtered out)
    assert {r["cat"] for r in records} <= {"reconfig", "flowcontrol", "fabric"}


def test_report_renders_timeline_and_latency_table(captured_run, capsys):
    trace_path, metrics_path = captured_run
    rc = trace_report.main([str(trace_path), "--metrics", str(metrics_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Reconfiguration timeline" in out
    assert "epoch tag" in out
    assert "settled" in out
    assert "Skeptic verdicts" in out
    assert "Port-monitor timeouts" in out
    assert "Per-VC latency" in out
    # the circuit's cells show up as a vc<k> row under the receiving host
    assert "host.h1" in out
    assert "vc" in out


def test_report_sections_can_be_selected(captured_run, capsys):
    trace_path, metrics_path = captured_run
    trace_report.main(
        [str(trace_path), "--metrics", str(metrics_path), "--section", "fabric"]
    )
    out = capsys.readouterr().out
    assert "Fabric utilization" in out
    assert "Reconfiguration timeline" not in out


def test_report_without_metrics_still_renders_timeline(captured_run, capsys):
    trace_path, _ = captured_run
    rc = trace_report.main([str(trace_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Reconfiguration timeline" in out
