"""End-to-end: capture a reconfiguration experiment, render the report.

This is the acceptance path for the observability PR: a bench_e4-style
run (converge, crash a switch, reconfigure) captured with ``repro.obs``
must produce a trace that ``tools/trace_report.py`` renders as a
reconfiguration timeline plus a per-VC latency table.
"""

import json
import sys
from pathlib import Path

import pytest

import repro.obs as obs

from tests.conftest import line_with_hosts

TOOLS = Path(__file__).resolve().parents[2] / "tools"
if str(TOOLS) not in sys.path:
    sys.path.insert(0, str(TOOLS))

import trace_report  # noqa: E402


@pytest.fixture(scope="module")
def captured_run(tmp_path_factory):
    """Converge a 4-switch line, push traffic, crash an interior switch,
    reconfigure, and write the trace + metrics snapshot to disk."""
    out = tmp_path_factory.mktemp("trace")
    # keep the kernel firehose out so the protocol trace stays small
    tracer = obs.Tracer(categories=["reconfig", "flowcontrol", "fabric"])
    with obs.capture(tracer) as cap:
        net = line_with_hosts(4)
        net.start()
        net.run_until_converged(timeout_us=500_000)
        circuit = net.setup_circuit("h0", "h1")
        net.host("h0").send_raw_cells(circuit.vc, 40)
        net.run(5_000.0)
        net.crash_switch("s1")
        net.run_until(net.fully_reconfigured, timeout_us=1_000_000)
        trace_path = out / "run.trace.jsonl"
        metrics_path = out / "run.metrics.json"
        cap.tracer.write_jsonl(trace_path)
        with open(metrics_path, "w", encoding="utf-8") as stream:
            json.dump(cap.snapshot(), stream)
    return trace_path, metrics_path


def test_trace_contains_the_reconfiguration_story(captured_run):
    trace_path, _ = captured_run
    records = obs.read_jsonl(trace_path)
    names = {r["name"] for r in records}
    assert "epoch.trigger" in names
    assert "epoch.begin" in names
    assert "epoch.end" in names
    assert "skeptic.verdict" in names
    assert "monitor.timeout" in names  # the crashed switch's neighbours
    assert "credit.grant" in names
    # every record in this capture is protocol-level (kernel filtered out)
    assert {r["cat"] for r in records} <= {"reconfig", "flowcontrol", "fabric"}


def test_report_renders_timeline_and_latency_table(captured_run, capsys):
    trace_path, metrics_path = captured_run
    rc = trace_report.main([str(trace_path), "--metrics", str(metrics_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Reconfiguration timeline" in out
    assert "epoch tag" in out
    assert "settled" in out
    assert "Skeptic verdicts" in out
    assert "Port-monitor timeouts" in out
    assert "Per-VC latency" in out
    # the circuit's cells show up as a vc<k> row under the receiving host
    assert "host.h1" in out
    assert "vc" in out


def test_report_sections_can_be_selected(captured_run, capsys):
    trace_path, metrics_path = captured_run
    trace_report.main(
        [str(trace_path), "--metrics", str(metrics_path), "--section", "fabric"]
    )
    out = capsys.readouterr().out
    assert "Fabric utilization" in out
    assert "Reconfiguration timeline" not in out


def test_report_without_metrics_still_renders_timeline(captured_run, capsys):
    trace_path, _ = captured_run
    rc = trace_report.main([str(trace_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Reconfiguration timeline" in out


# ----------------------------------------------------------------------
# tolerant loading: missing, empty, and truncated inputs
# ----------------------------------------------------------------------
def test_missing_file_exits_2_with_message(tmp_path, capsys):
    rc = trace_report.main([str(tmp_path / "nope.jsonl")])
    assert rc == 2
    assert "cannot read" in capsys.readouterr().err


def test_empty_file_exits_0(tmp_path, capsys):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    rc = trace_report.main([str(empty)])
    assert rc == 0
    assert "no trace records" in capsys.readouterr().out


def test_truncated_lines_are_skipped_with_warning(tmp_path, capsys):
    path = tmp_path / "truncated.jsonl"
    good = json.dumps(
        {"t": 1.0, "cat": "reconfig", "comp": "s0", "name": "epoch.trigger",
         "data": {"tag": "e1@s0"}}
    )
    # a valid record, a line cut mid-write, and a non-object line
    path.write_text(good + "\n" + good[: len(good) // 2] + "\n42\n")
    rc = trace_report.main([str(path)])
    assert rc == 0
    captured = capsys.readouterr()
    assert "skipping malformed line" in captured.err
    assert "1 trace records" in captured.out


def test_fully_truncated_file_exits_0(tmp_path, capsys):
    path = tmp_path / "garbage.jsonl"
    path.write_text('{"t": 1.0, "cat": "reconf\n{"broken\n')
    rc = trace_report.main([str(path)])
    assert rc == 0
    assert "no trace records" in capsys.readouterr().out


# ----------------------------------------------------------------------
# journey section
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def journey_trace(tmp_path_factory):
    """A journey-traced traffic run over a converged line."""
    from repro.net.packet import Packet

    from tests.conftest import converged_line

    out = tmp_path_factory.mktemp("journey")
    net = converged_line(3)
    tracer = obs.Tracer(categories=["journey"])
    net.sim.tracer = tracer
    circuit = net.setup_circuit("h0", "h1")
    host = net.host("h0")
    for _ in range(3):
        host.send_packet(
            circuit.vc,
            Packet(
                source=host.node_id,
                destination=host.senders[circuit.vc].destination,
                payload=bytes(300),
            ),
        )
        net.run(3_000.0)
    net.run(20_000.0)
    path = out / "journey.trace.jsonl"
    tracer.write_jsonl(path)
    return path


def test_journey_section_decomposes_critical_path(journey_trace, capsys):
    rc = trace_report.main([str(journey_trace), "--section", "journey"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Cell journeys (critical path)" in out
    assert "queueing" in out
    assert "matching" in out
    assert "wire" in out
    assert "Slowest cell" in out
    # the hop timeline walks the whole path
    for stage in ("segment", "tx", "wire.arrive", "voq.enqueue",
                  "grant", "deliver"):
        assert stage in out


def test_journey_section_without_journey_records(captured_run, capsys):
    trace_path, _ = captured_run
    rc = trace_report.main([str(trace_path), "--section", "journey"])
    assert rc == 0
    assert "no journey records" in capsys.readouterr().out
