"""Shared test helpers: small pre-wired networks."""

from __future__ import annotations

import pytest

from repro.net.host import HostConfig
from repro.net.network import Network
from repro.net.topology import Topology
from repro.switch.switch import SwitchConfig


def fast_switch_config(**overrides) -> SwitchConfig:
    """A configuration tuned for quick tests: short frames, snappy
    monitoring, small skeptic hold-downs."""
    defaults = dict(
        frame_slots=32,
        control_delay_us=10.0,
        ping_interval_us=500.0,
        ack_timeout_us=200.0,
        miss_threshold=2,
        skeptic_base_wait_us=2_000.0,
        skeptic_max_level=4,
        skeptic_decay_us=200_000.0,
        boot_reconfig_delay_us=1_500.0,
        reconfig_watchdog_us=50_000.0,
    )
    defaults.update(overrides)
    return SwitchConfig(**defaults)


def fast_host_config(**overrides) -> HostConfig:
    defaults = dict(
        ping_interval_us=500.0,
        ack_timeout_us=200.0,
        miss_threshold=2,
        skeptic_base_wait_us=2_000.0,
        skeptic_max_level=4,
        frame_slots=32,
    )
    defaults.update(overrides)
    return HostConfig(**defaults)


def line_with_hosts(
    n_switches: int = 3, seed: int = 1, **config_overrides
) -> Network:
    """h0 - s0 - s1 - ... - s(n-1) - h1, all fast links, booted nowhere."""
    topo = Topology.line(n_switches)
    topo.add_host(0)
    topo.add_host(1)
    topo.connect("h0", "s0", port_a=0, bps=622_000_000)
    topo.connect("h1", f"s{n_switches - 1}", port_a=0, bps=622_000_000)
    return Network(
        topo,
        seed=seed,
        switch_config=fast_switch_config(**config_overrides),
        host_config=fast_host_config(),
    )


def converged_line(n_switches: int = 3, seed: int = 1, **overrides) -> Network:
    net = line_with_hosts(n_switches, seed=seed, **overrides)
    net.start()
    net.run_until_converged(timeout_us=500_000)
    return net


@pytest.fixture
def small_net() -> Network:
    """A converged 3-switch line with a host on each end."""
    return converged_line(3)
