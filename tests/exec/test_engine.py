"""Tests for the parallel deterministic sweep engine.

The headline property: a parallel run is digest-identical to a serial
run, task by task, and the engine can *prove* it by replaying sampled
tasks.  Everything else here guards the machinery that property rests
on -- order-free seed derivation, result ordering, and the verifier's
ability to actually catch a nondeterministic driver.
"""

import pytest

from repro.exec import (
    SweepEngine,
    driver,
    get_driver,
    make_tasks,
    payload_digest,
    run_task,
)
from repro.sim.random import derived_seed, derived_stream

FABRIC_GRID = {"n_ports": [4, 8], "load": [0.6, 0.9], "slots": [300]}


@driver("toy")
def toy_driver(params, seed):
    """Pure function of (params, seed): the shape every driver must have."""
    rng = derived_stream("test/toy", seed)
    return {
        "value": rng.random(),
        "scaled": params.get("x", 1) * rng.randrange(1_000),
    }


@driver("stateful")
def stateful_driver(params, seed):
    """Deliberately broken: leaks process identity into the payload, the
    worker-dependence the engine's contract forbids."""
    import os

    return {"value": os.getpid()}


class TestTaskDerivation:
    def test_grid_expansion_sorted_and_complete(self):
        tasks = make_tasks("toy", {"b": [1, 2], "a": [3]}, repeats=2)
        assert len(tasks) == 4
        assert [t.index for t in tasks] == [0, 1, 2, 3]
        assert tasks[0].name == "exec/toy/a=3,b=1/rep0"
        assert tasks[1].name == "exec/toy/a=3,b=1/rep1"
        assert tasks[2].name == "exec/toy/a=3,b=2/rep0"

    def test_insertion_order_is_irrelevant(self):
        forward = make_tasks("toy", {"a": [1], "b": [2, 3]}, root_seed=5)
        backward = make_tasks("toy", {"b": [2, 3], "a": [1]}, root_seed=5)
        assert forward == backward

    def test_seeds_are_name_derived_not_positional(self):
        """Growing the grid or adding repeats never reseeds existing
        tasks -- each seed is a pure function of the task name."""
        small = make_tasks("toy", {"x": [1]}, repeats=1, root_seed=9)
        grown = make_tasks("toy", {"x": [1, 2]}, repeats=3, root_seed=9)
        by_name = {t.name: t.seed for t in grown}
        for task in small:
            assert by_name[task.name] == task.seed
            assert task.seed == derived_seed(task.name, 9)

    def test_unknown_driver_fails_fast(self):
        with pytest.raises(KeyError):
            make_tasks("no-such-driver", {"x": [1]})
        with pytest.raises(KeyError):
            get_driver("no-such-driver")


class TestDigest:
    def test_payload_digest_is_key_order_free(self):
        assert payload_digest({"a": 1, "b": 2}) == payload_digest(
            {"b": 2, "a": 1}
        )

    def test_payload_digest_separates_values(self):
        assert payload_digest({"a": 1}) != payload_digest({"a": 2})


class TestParallelEqualsSerial:
    def test_fabric_grid_digest_identical(self):
        """>= 3 grid points, serially and across 4 workers: identical
        digests in identical order."""
        tasks = make_tasks("fabric", FABRIC_GRID, repeats=1, root_seed=3)
        assert len(tasks) >= 3
        serial = SweepEngine(workers=0).run(tasks)
        parallel = SweepEngine(workers=4).run(tasks)
        assert [r.digest for r in serial] == [r.digest for r in parallel]
        assert [r.task for r in parallel] == tasks, "results out of order"
        assert [r.payload for r in serial] == [r.payload for r in parallel]

    def test_repeats_get_distinct_seeds_and_payloads(self):
        tasks = make_tasks(
            "fabric",
            {"n_ports": [8], "load": [0.9], "slots": [300]},
            repeats=3,
        )
        results = SweepEngine(workers=0).run(tasks)
        digests = {r.digest for r in results}
        assert len(digests) == 3, "repeat seeds must decorrelate the runs"

    def test_verify_passes_on_honest_results(self):
        tasks = make_tasks("toy", {"x": [1, 2, 3, 4]}, root_seed=2)
        engine = SweepEngine(workers=2)
        results = engine.run(tasks)
        assert engine.verify(results, sample=3, root_seed=2) == []

    def test_verify_catches_worker_dependent_results(self):
        """A driver leaking process identity produces different payloads
        in pool workers than in a serial replay; the digest comparison
        must notice."""
        tasks = make_tasks("stateful", {"x": [1, 2, 3]})
        engine = SweepEngine(workers=2)
        results = engine.run(tasks)
        mismatches = engine.verify(results, sample=3)
        assert mismatches, "verify must flag the nondeterministic driver"
        original, replay = mismatches[0]
        assert original.digest != replay.digest

    def test_verify_empty_results(self):
        assert SweepEngine().verify([]) == []


class TestDriverRegistry:
    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            driver("toy")(lambda params, seed: {})

    def test_run_task_digests_its_payload(self):
        task = make_tasks("toy", {"x": [7]})[0]
        result = run_task(task)
        assert result.digest == payload_digest(result.payload)


class TestChunkingAndPoolReuse:
    def test_chunked_map_digest_identical_to_serial(self):
        """chunksize only changes the dispatch schedule, never payloads:
        seeding is name-derived, so chunk boundaries cannot leak in."""
        tasks = make_tasks("toy", {"x": [1, 2, 3, 4, 5, 6]}, root_seed=3)
        serial = SweepEngine(workers=0).run(tasks)
        chunked = SweepEngine(workers=2, chunksize=3).run(tasks)
        assert [r.digest for r in chunked] == [r.digest for r in serial]

    def test_chunksize_must_be_positive(self):
        with pytest.raises(ValueError):
            SweepEngine(workers=2, chunksize=0)

    def test_persistent_pool_reused_across_runs(self):
        tasks = make_tasks("toy", {"x": [1, 2, 3, 4]}, root_seed=5)
        engine = SweepEngine(workers=2, persistent_pool=True)
        try:
            first = engine.run(tasks)
            pool = engine._pool
            assert pool is not None
            second = engine.run(tasks)
            assert engine._pool is pool  # same pool object, no respawn
            assert [r.digest for r in first] == [r.digest for r in second]
        finally:
            engine.close()
        assert engine._pool is None

    def test_close_is_idempotent_and_pool_recreated_on_demand(self):
        tasks = make_tasks("toy", {"x": [1, 2]}, root_seed=7)
        engine = SweepEngine(workers=2, persistent_pool=True)
        engine.close()  # nothing alive yet
        results = engine.run(tasks)
        engine.close()
        engine.close()
        # a later run lazily builds a fresh pool
        again = engine.run(tasks)
        engine.close()
        assert [r.digest for r in again] == [r.digest for r in results]

    def test_telemetry_records_chunksize_and_reuse(self):
        tasks = make_tasks("toy", {"x": [1, 2, 3, 4]}, root_seed=9)
        engine = SweepEngine(workers=2, chunksize=2, persistent_pool=True)
        try:
            engine.run(tasks, telemetry=True)
            cold = engine.last_telemetry
            assert cold.chunksize == 2
            assert not cold.pool_reused
            assert cold.pool_startup_s > 0.0
            engine.run(tasks, telemetry=True)
            warm = engine.last_telemetry
            assert warm.pool_reused
            assert warm.pool_startup_s == 0.0
            assert "pool reused" in warm.render()
            assert "chunksize 2" in warm.render()
        finally:
            engine.close()
