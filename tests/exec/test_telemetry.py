"""Sweep-engine telemetry: phase timings without changing the results."""

import os

from repro.exec import SweepEngine, make_tasks, run_task_timed

GRID = {"n_ports": [4, 8], "load": [0.5], "slots": [120]}


def _tasks(repeats=2):
    return make_tasks("fabric", GRID, repeats=repeats, root_seed=11)


def test_serial_telemetry_matches_plain_run():
    tasks = _tasks()
    plain = SweepEngine(workers=0).run(tasks)
    timed = SweepEngine(workers=0).run(tasks, telemetry=True)
    assert [r.digest for r in timed] == [r.digest for r in plain]


def test_serial_telemetry_records_execute_phase():
    engine = SweepEngine(workers=0)
    engine.run(_tasks(), telemetry=True)
    telemetry = engine.last_telemetry
    assert telemetry is not None
    assert telemetry.workers == 1
    assert len(telemetry.tasks) == 4
    assert all(t.execute_s > 0.0 for t in telemetry.tasks)
    assert all(t.dispatch_s == 0.0 for t in telemetry.tasks)
    assert all(t.worker == os.getpid() for t in telemetry.tasks)
    assert telemetry.wall_s > 0.0


def test_parallel_telemetry_matches_plain_run():
    tasks = _tasks()
    plain = SweepEngine(workers=0).run(tasks)
    engine = SweepEngine(workers=2)
    timed = engine.run(tasks, telemetry=True)
    assert [r.digest for r in timed] == [r.digest for r in plain]
    assert [r.task.name for r in timed] == [t.name for t in tasks]
    telemetry = engine.last_telemetry
    assert telemetry is not None
    assert telemetry.workers == 2
    assert telemetry.pool_startup_s > 0.0
    assert len(telemetry.tasks) == 4
    parent = os.getpid()
    assert all(t.worker != parent for t in telemetry.tasks)
    assert all(t.execute_s > 0.0 for t in telemetry.tasks)
    # phases are clamped non-negative even across process clocks
    for t in telemetry.tasks:
        assert t.serialize_s >= 0.0
        assert t.dispatch_s >= 0.0
        assert t.merge_s >= 0.0


def test_per_worker_aggregation_and_render():
    engine = SweepEngine(workers=2)
    engine.run(_tasks(), telemetry=True)
    telemetry = engine.last_telemetry
    per_worker = telemetry.per_worker()
    assert sum(row["tasks"] for row in per_worker.values()) == 4
    assert 1 <= len(per_worker) <= 2
    totals = telemetry.phase_totals()
    assert set(totals) == {"serialize", "dispatch", "execute", "merge"}
    rendered = telemetry.render()
    assert "sweep telemetry" in rendered
    assert "pool startup" in rendered
    assert "dispatch_ms" in rendered
    for pid in per_worker:
        assert str(pid) in rendered


def test_run_task_timed_wraps_run_task():
    task = _tasks(repeats=1)[0]
    result, pid, start, end, execute_s = run_task_timed(task)
    assert pid == os.getpid()
    assert end >= start
    assert 0.0 < execute_s <= (end - start) + 1e-9
    from repro.exec import run_task

    assert result.digest == run_task(task).digest


def test_no_telemetry_by_default():
    engine = SweepEngine(workers=0)
    engine.run(_tasks())
    assert engine.last_telemetry is None
