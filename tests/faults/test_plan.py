"""FaultPlan construction, validation, and ordering."""

import pytest

from repro.faults import (
    ClockDriftStep,
    CreditLossBurst,
    ErrorRateStep,
    FaultPlan,
    LinkCut,
    LinkFlap,
    PlanError,
    SwitchCrash,
)


class TestEventValidation:
    def test_negative_start_rejected(self):
        with pytest.raises(PlanError):
            LinkCut(at_us=-1.0, a="s0", b="s1")

    def test_restore_before_cut_rejected(self):
        with pytest.raises(PlanError):
            LinkCut(at_us=100.0, a="s0", b="s1", restore_at_us=50.0)

    def test_restart_before_crash_rejected(self):
        with pytest.raises(PlanError):
            SwitchCrash(at_us=100.0, switch="s0", restart_at_us=100.0)

    def test_flap_needs_positive_phases(self):
        with pytest.raises(PlanError):
            LinkFlap(at_us=0.0, a="s0", b="s1", flaps=0)
        with pytest.raises(PlanError):
            LinkFlap(at_us=0.0, a="s0", b="s1", down_us=0.0)

    def test_burst_probability_range(self):
        with pytest.raises(PlanError):
            CreditLossBurst(at_us=0.0, a="s0", b="s1", probability=0.0)
        with pytest.raises(PlanError):
            CreditLossBurst(at_us=0.0, a="s0", b="s1", probability=1.5)

    def test_error_rate_range(self):
        with pytest.raises(PlanError):
            ErrorRateStep(at_us=0.0, a="s0", b="s1", rate=1.5)

    def test_impossible_drift_rejected(self):
        with pytest.raises(PlanError):
            ClockDriftStep(at_us=0.0, switch="s0", drift_ppm=-2_000_000.0)

    def test_events_are_immutable(self):
        event = LinkCut(at_us=5.0, a="s0", b="s1")
        with pytest.raises(Exception):
            event.at_us = 10.0


class TestPlan:
    def test_events_sorted_by_time(self):
        plan = FaultPlan.of(
            SwitchCrash(at_us=300.0, switch="s1"),
            LinkCut(at_us=100.0, a="s0", b="s1"),
            LinkFlap(at_us=200.0, a="s1", b="s2"),
        )
        assert [e.at_us for e in plan] == [100.0, 200.0, 300.0]

    def test_end_covers_restores_and_trains(self):
        plan = FaultPlan.of(
            LinkCut(at_us=0.0, a="s0", b="s1", restore_at_us=500.0),
            LinkFlap(at_us=100.0, a="s1", b="s2", flaps=2,
                     down_us=100.0, up_us=100.0),
        )
        assert plan.end_us == 500.0
        assert plan.last_onset_us == 100.0

    def test_empty_plan(self):
        plan = FaultPlan()
        assert len(plan) == 0
        assert plan.end_us == 0.0
        assert plan.describe() == "(empty plan)"

    def test_non_event_rejected(self):
        with pytest.raises(PlanError):
            FaultPlan(("not an event",))

    def test_describe_mentions_every_event(self):
        plan = FaultPlan.of(
            LinkCut(at_us=100.0, a="s0", b="s1"),
            SwitchCrash(at_us=200.0, switch="s2", restart_at_us=400.0),
        )
        text = plan.describe()
        assert "s0<->s1" in text
        assert "crash s2" in text
