"""Seeded randomized chaos: random fault plans on random bi-connected
topologies, every invariant checked after every run.

Seeds are fixed so the suite is deterministic; each seed derives a
different topology (4-6 switches), plan (3 faults from all six kinds)
and traffic pattern.  A failing seed reproduces exactly with
``python tools/run_scenario.py --random <seed>``.
"""

import pytest

from repro.faults import ScenarioRunner, build_random_scenario

CHAOS_SEEDS = (1, 2, 3, 4, 5)


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_random_plan_holds_invariants(seed):
    net, plan, loads = build_random_scenario(seed)
    result = ScenarioRunner(net, plan, loads).run()
    assert result.passed, (
        f"chaos seed {seed} failed:\n{plan.describe()}\n{result.report()}"
    )


def test_random_scenario_is_deterministic():
    digests = []
    for _ in range(2):
        net, plan, loads = build_random_scenario(2)
        result = ScenarioRunner(net, plan, loads).run()
        digests.append((plan.describe(), result.delivered, result.settled_at_us))
    assert digests[0] == digests[1]
