"""ScenarioRunner mechanics: fault application, traffic, determinism,
observability wiring, and the invariant checker."""

import pytest

from repro.faults import (
    ClockDriftStep,
    CreditLossBurst,
    ErrorRateStep,
    FaultPlan,
    LinkCut,
    LinkFlap,
    ScenarioRunner,
    TrafficLoad,
    max_verdict_changes,
)
from repro.net.host import HostConfig
from repro.net.network import Network
from repro.net.topology import Topology
from repro.obs import Tracer
from repro.switch.switch import SwitchConfig

from tests.conftest import fast_host_config, fast_switch_config


def ring_net(seed: int = 1, **overrides) -> Network:
    """h0 - (s0 s1 s2 ring) - h1: redundant, so cuts do not partition."""
    topo = Topology.ring(3)
    topo.add_host(0)
    topo.add_host(1)
    topo.connect("h0", "s0", port_a=0, bps=622_000_000)
    topo.connect("h0", "s1", port_a=1, bps=622_000_000)
    topo.connect("h1", "s2", port_a=0, bps=622_000_000)
    topo.connect("h1", "s1", port_a=1, bps=622_000_000)
    overrides.setdefault("resync_interval_us", 5_000.0)
    overrides.setdefault("enable_local_reroute", True)
    return Network(
        topo,
        seed=seed,
        switch_config=fast_switch_config(**overrides),
        host_config=fast_host_config(),
    )


LOAD = TrafficLoad(
    source="h0", destination="h1", packet_size=200,
    interval_us=2_000.0, count=30,
)


def run(net, plan, loads=(LOAD,), **kwargs):
    kwargs.setdefault("settle_us", 60_000.0)
    return ScenarioRunner(net, plan, loads, **kwargs).run()


class TestFaultApplication:
    def test_link_cut_and_restore(self):
        net = ring_net()
        plan = FaultPlan.of(
            LinkCut(at_us=20_000.0, a="s0", b="s2", restore_at_us=60_000.0),
        )
        result = run(net, plan)
        assert net.link_between("s0", "s2").working
        counters = net.metrics_snapshot()["faults"]["counters"]
        assert counters["link_cuts"] == 1
        assert result.faults_applied == 1
        assert result.passed, result.report()

    def test_flap_train_counts_every_transition(self):
        net = ring_net()
        plan = FaultPlan.of(
            LinkFlap(at_us=20_000.0, a="s0", b="s2", flaps=3,
                     down_us=2_000.0, up_us=2_000.0),
        )
        result = run(net, plan)
        counters = net.metrics_snapshot()["faults"]["counters"]
        assert counters["flap_transitions"] == 6  # 3 downs + 3 ups
        assert net.link_between("s0", "s2").working
        assert result.passed, result.report()

    def test_credit_burst_drops_and_unhooks(self):
        net = ring_net()
        plan = FaultPlan.of(
            CreditLossBurst(at_us=10_000.0, a="s1", b="s2",
                            duration_us=30_000.0, probability=1.0),
            CreditLossBurst(at_us=10_000.0, a="s0", b="s1",
                            duration_us=30_000.0, probability=1.0),
            CreditLossBurst(at_us=10_000.0, a="s0", b="s2",
                            duration_us=30_000.0, probability=1.0),
        )
        result = run(net, plan)
        # Whatever route the circuit took, one burst covered it.
        counters = net.metrics_snapshot()["faults"]["counters"]
        assert counters["credit_cells_dropped"] > 0
        for link in net.links.values():
            assert link.drop_filter is None
        assert result.passed, result.report()

    def test_error_step_reverts_rate(self):
        net = ring_net()
        plan = FaultPlan.of(
            ErrorRateStep(at_us=20_000.0, a="s0", b="s2",
                          rate=0.5, until_us=40_000.0),
        )
        run(net, plan)
        assert net.link_between("s0", "s2").error_rate == 0.0

    def test_clock_drift_step_applied(self):
        net = ring_net()
        plan = FaultPlan.of(
            ClockDriftStep(at_us=20_000.0, switch="s1", drift_ppm=150.0),
        )
        run(net, plan)
        assert net.switch("s1").clock.drift_ppm == 150.0


class TestTrafficAndDeterminism:
    def test_recorded_payloads_match_deliveries(self):
        net = ring_net()
        result = run(net, FaultPlan())
        assert result.passed, result.report()
        total_sent = sum(len(p) for p in result.sent.values())
        assert total_sent == LOAD.count
        assert result.delivered == LOAD.count
        delivered = {p.uid: p for p in net.host("h1").delivered}
        for packets in result.sent.values():
            for sent_packet in packets:
                assert delivered[sent_packet.uid].payload == sent_packet.payload

    def test_same_seed_replays_exactly(self):
        outcomes = []
        for _ in range(2):
            net = ring_net(seed=9)
            plan = FaultPlan.of(
                CreditLossBurst(at_us=10_000.0, a="s0", b="s1",
                                duration_us=20_000.0, probability=0.7),
                LinkCut(at_us=40_000.0, a="s0", b="s2",
                        restore_at_us=60_000.0),
            )
            result = run(net, plan)
            counters = net.metrics_snapshot()["faults"]["counters"]
            payload_digest = [
                p.payload
                for packets in result.sent.values()
                for p in packets
            ]
            outcomes.append(
                (
                    result.delivered,
                    result.settled_at_us,
                    counters.get("credit_cells_dropped", 0),
                    payload_digest,
                )
            )
        assert outcomes[0] == outcomes[1]

    def test_boot_failure_is_a_scenario_error(self):
        from repro.faults import ScenarioError

        # A timeout too short for even fast configs to reconfigure in.
        net = Network(Topology.line(2), switch_config=fast_switch_config())
        with pytest.raises(ScenarioError):
            ScenarioRunner(net, FaultPlan(), convergence_timeout_us=1.0).run()


class TestObservability:
    def test_trace_spans_per_fault(self):
        net = ring_net()
        tracer = Tracer(categories={"faults"})
        net.sim.tracer = tracer
        plan = FaultPlan.of(
            LinkCut(at_us=20_000.0, a="s0", b="s2", restore_at_us=50_000.0),
        )
        run(net, plan)
        names = [r.name for r in tracer.records]
        assert "fault.link_cut.begin" in names
        assert "fault.link_cut.end" in names
        assert "scenario.begin" in names
        assert "scenario.end" in names
        begin = next(r for r in tracer.records if r.name == "fault.link_cut.begin")
        end = next(r for r in tracer.records if r.name == "fault.link_cut.end")
        assert end.time - begin.time == pytest.approx(30_000.0)

    def test_metrics_registered_under_faults_node(self):
        net = ring_net()
        run(net, FaultPlan.of(LinkFlap(at_us=10_000.0, a="s0", b="s2",
                                       flaps=1, down_us=1_000.0,
                                       up_us=1_000.0)))
        assert "faults" in net.registry
        counters = net.metrics_snapshot()["faults"]["counters"]
        assert counters["events_applied"] >= 2


class TestInvariantChecker:
    def test_quiet_network_passes_everything(self):
        net = ring_net()
        result = run(net, FaultPlan())
        assert result.passed
        names = [r.name for r in result.invariants]
        assert "reconfiguration converged" in names
        assert "skeptic verdict rate bounded" in names
        assert "credit conservation" in names
        assert "no silent mis-assembly" in names

    def test_partition_converges_on_main_component(self):
        # Cut both of s2's trunks permanently: the switch core shrinks
        # to {s0, s1}.  Convergence is judged on the main component --
        # it must still settle on one epoch matching the new reality.
        net = ring_net()
        plan = FaultPlan.of(
            LinkCut(at_us=20_000.0, a="s0", b="s2"),
            LinkCut(at_us=20_000.0, a="s1", b="s2"),
        )
        result = run(net, plan)
        convergence = next(
            r for r in result.invariants if r.name == "reconfiguration converged"
        )
        assert convergence.passed, convergence.detail
        assert [str(s) for s in net.main_component_switches()] == ["s0", "s1"]

    def test_misassembly_checker_catches_forged_delivery(self):
        from repro.faults.invariants import check_no_misassembly
        from repro.net.packet import Packet

        net = ring_net()
        result = run(net, FaultPlan())
        assert result.passed
        # Corrupt a delivered payload post hoc: the checker must notice.
        victim = net.host("h1").delivered[0]
        victim.payload = b"forged" + victim.payload[6:]
        verdict = check_no_misassembly(net, result.sent)
        assert not verdict.passed
        assert "corrupted" in verdict.detail

    def test_bound_grows_with_duration(self):
        short = max_verdict_changes(10_000.0, 2_000.0, 4, 200_000.0)
        long = max_verdict_changes(1_000_000.0, 2_000.0, 4, 200_000.0)
        assert long > short >= 2
