"""Invariant failure -> flight dump -> renderable report, end to end.

The acceptance path for the flight recorder: a scenario that forces an
invariant violation must leave a JSONL dump that ``tools/trace_report.py``
renders as per-component timelines (including the failing switch's).
"""

import sys
from pathlib import Path

from repro.faults import ErrorRateStep, FaultPlan, ScenarioRunner, TrafficLoad
from repro.obs import read_jsonl

from tests.faults.test_runner import ring_net

TOOLS = Path(__file__).resolve().parents[2] / "tools"
if str(TOOLS) not in sys.path:
    sys.path.insert(0, str(TOOLS))

import trace_report  # noqa: E402

LOAD = TrafficLoad(
    source="h0", destination="h1", packet_size=200,
    interval_us=2_000.0, count=30,
)


def _force_violation(flight_dir):
    """All-error trunk, never restored: pings all die, skeptics declare
    the link dead, but it is physically working -- the convergence
    invariant's expected view can never match, deterministically."""
    net = ring_net()
    plan = FaultPlan.of(
        ErrorRateStep(at_us=20_000.0, a="s0", b="s2", rate=1.0),
    )
    runner = ScenarioRunner(
        net, plan, (LOAD,), settle_us=60_000.0,
        convergence_timeout_us=300_000.0,
        flight_dir=str(flight_dir) if flight_dir is not None else None,
    )
    return runner.run()


def test_forced_violation_dumps_flight_recorder(tmp_path):
    result = _force_violation(tmp_path)
    assert not result.passed
    assert result.flight_dump is not None
    dump = Path(result.flight_dump)
    assert dump.exists() and dump.parent == tmp_path
    assert str(dump) in result.report()

    rows = read_jsonl(dump)
    meta = rows[0]
    assert meta["cat"] == "flight.meta"
    assert "invariant violation" in meta["data"]["reason"]
    comps = {r["comp"] for r in rows[1:]}
    # the scenario's faults and the affected switches are all in the dump
    assert "faults" in comps
    assert any(c.startswith("switch.") for c in comps)
    names = {r["name"] for r in rows[1:]}
    assert "fault.error_rate" in names
    assert "skeptic.verdict" in names


def test_trace_report_renders_the_dump(tmp_path, capsys):
    result = _force_violation(tmp_path)
    rc = trace_report.main(
        [str(result.flight_dump), "--section", "flight"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "Flight recorder" in out
    assert "invariant violation" in out
    assert "skeptic.verdict" in out


def test_trace_report_component_filter(tmp_path, capsys):
    result = _force_violation(tmp_path)
    rows = read_jsonl(result.flight_dump)
    switch_comp = sorted(
        {r["comp"] for r in rows if r["comp"].startswith("switch.")}
    )[0]
    rc = trace_report.main(
        [str(result.flight_dump), "--section", "flight",
         "--component", switch_comp]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert switch_comp in out
    assert "faults (" not in out  # filtered away


def test_no_flight_dir_means_no_dump(monkeypatch):
    monkeypatch.delenv("REPRO_FLIGHT_DIR", raising=False)
    result = _force_violation(None)
    assert not result.passed
    assert result.flight_dump is None
