"""CPU-aware speed-gate logic in ``tools/run_speed_bench.py``.

The parallel-speedup workloads (``sweep_parallel_w4``) assume real
cores; on a 1-2 cpu CI runner their timings regress for reasons that
have nothing to do with the code under test, which made the
``sweep_parallel_speedup_w4`` gate flaky.  The fix: workloads whose
``min_cpus`` exceeds ``os.cpu_count()`` keep their checksum enforcement
but report timings -- and any speedup pair built on them -- as
informational only.  These tests drive ``check_against_baseline`` with
canned timings so no real workload runs.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "tools"))

import run_speed_bench  # noqa: E402


def canned(seconds_by_name, checksums=None):
    checksums = checksums or {}
    return {
        name: {
            "description": name,
            "seconds": seconds,
            "checksum": checksums.get(name, 1),
        }
        for name, seconds in seconds_by_name.items()
    }


@pytest.fixture
def baseline(tmp_path):
    path = tmp_path / "BENCH_speed.json"
    path.write_text(
        json.dumps(
            {
                "schema": 1,
                "workloads": canned(
                    {
                        "sweep_parallel_serial": 1.0,
                        "sweep_parallel_w4": 0.5,
                        "link_train_batched": 0.2,
                    }
                ),
            }
        )
    )
    return path


def check(monkeypatch, baseline, current, cpus):
    monkeypatch.setattr(
        run_speed_bench, "time_workloads",
        lambda repeats, verbose=True, quick_only=False: current,
    )
    monkeypatch.setattr(run_speed_bench.os, "cpu_count", lambda: cpus)
    return run_speed_bench.check_against_baseline(
        baseline, repeats=1, tolerance=0.25, missing_ok=False
    )


class TestCpuAwareGate:
    def test_cpu_limited_regression_is_informational(
        self, monkeypatch, baseline, capsys
    ):
        """On a 1-cpu host a slow sweep_parallel_w4 must not fail the
        gate: the workload needs 4 cpus to time meaningfully."""
        current = canned(
            {
                "sweep_parallel_serial": 1.0,
                "sweep_parallel_w4": 1.4,  # >25% over baseline
                "link_train_batched": 0.2,
            }
        )
        assert check(monkeypatch, baseline, current, cpus=1) == 0
        out = capsys.readouterr().out
        assert "informational (needs 4 cpus, host has 1" in out
        assert "sweep_parallel_speedup_w4" in out
        assert "cpu-limited host" in out

    def test_same_regression_fails_with_enough_cpus(
        self, monkeypatch, baseline
    ):
        current = canned(
            {
                "sweep_parallel_serial": 1.0,
                "sweep_parallel_w4": 1.4,
                "link_train_batched": 0.2,
            }
        )
        assert check(monkeypatch, baseline, current, cpus=8) == 1

    def test_checksum_still_enforced_when_cpu_limited(
        self, monkeypatch, baseline
    ):
        """Informational covers *timing* only: the timed work changing
        on a cpu-limited workload is still a hard failure."""
        current = canned(
            {
                "sweep_parallel_serial": 1.0,
                "sweep_parallel_w4": 0.5,
                "link_train_batched": 0.2,
            },
            checksums={"sweep_parallel_w4": 999},
        )
        assert check(monkeypatch, baseline, current, cpus=1) == 1

    def test_serial_workloads_still_gated_on_small_hosts(
        self, monkeypatch, baseline
    ):
        """min_cpus=1 workloads regressing on a 1-cpu host still fail."""
        current = canned(
            {
                "sweep_parallel_serial": 1.0,
                "sweep_parallel_w4": 0.5,
                "link_train_batched": 0.4,  # 2x the baseline
            }
        )
        assert check(monkeypatch, baseline, current, cpus=1) == 1

    def test_clean_run_passes_either_way(self, monkeypatch, baseline):
        current = canned(
            {
                "sweep_parallel_serial": 1.0,
                "sweep_parallel_w4": 0.5,
                "link_train_batched": 0.2,
            }
        )
        assert check(monkeypatch, baseline, current, cpus=1) == 0
        assert check(monkeypatch, baseline, current, cpus=8) == 0


class TestWorkloadMetadata:
    def test_sweep_w4_declares_its_core_count(self):
        from benchmarks.bench_speed import SPEEDUP_PAIRS, WORKLOADS

        by_name = {w.name: w for w in WORKLOADS}
        assert by_name["sweep_parallel_w4"].min_cpus == 4
        assert by_name["sweep_parallel_serial"].min_cpus == 1
        # The new link_retx pair exists and is cpu-agnostic.
        slow, fast = SPEEDUP_PAIRS["link_retx_recovery_cost"]
        assert by_name[slow].min_cpus == 1
        assert by_name[fast].min_cpus == 1
