"""Tests for route computation and circuit bookkeeping."""

import pytest

from repro._types import host_id, switch_id
from repro.core.routing.circuits import (
    FIRST_DATA_VC,
    CircuitState,
    VcAllocator,
    VirtualCircuit,
)
from repro.core.routing.paths import (
    Route,
    RouteComputer,
    RoutingError,
    port_on,
    switch_hops_of,
)
from repro.net.cell import TrafficClass
from repro.net.topology import Topology


def hosted_line(n=3):
    topo = Topology.line(n)
    topo.add_host(0)
    topo.add_host(1)
    topo.connect("h0", "s0", port_a=0)
    topo.connect("h1", f"s{n-1}", port_a=0)
    return topo


class TestRouteComputer:
    def test_host_route_ends_at_hosts(self):
        computer = RouteComputer(hosted_line().view(), switch_id(0))
        route = computer.host_route(host_id(0), host_id(1))
        assert route.nodes[0] == host_id(0)
        assert route.nodes[-1] == host_id(1)
        assert route.n_switches == 3
        assert len(route.edges) == len(route.nodes) - 1

    def test_switch_hops_ports_consistent(self):
        computer = RouteComputer(hosted_line().view(), switch_id(0))
        route = computer.host_route(host_id(0), host_id(1))
        for (switch, in_port, out_port), node in zip(
            route.switch_hops, route.nodes[1:-1]
        ):
            assert switch == node
            assert in_port != out_port

    def test_attachment_prefers_active_port(self):
        topo = Topology()
        topo.add_switch(0)
        topo.add_switch(1)
        topo.connect("s0", "s1")
        topo.add_host(0)
        topo.connect("h0", "s0", port_a=0)
        topo.connect("h0", "s1", port_a=1)
        computer = RouteComputer(topo.view(), switch_id(0))
        switch, _ = computer.attachment(host_id(0), preferred_port=0)
        assert switch == switch_id(0)
        switch, _ = computer.attachment(host_id(0), preferred_port=1)
        assert switch == switch_id(1)

    def test_unknown_host_rejected(self):
        computer = RouteComputer(hosted_line().view(), switch_id(0))
        with pytest.raises(RoutingError):
            computer.attachment(host_id(99))
        with pytest.raises(RoutingError):
            computer.host_route(host_id(0), host_id(99))

    def test_same_host_rejected(self):
        computer = RouteComputer(hosted_line().view(), switch_id(0))
        with pytest.raises(RoutingError):
            computer.host_route(host_id(0), host_id(0))

    def test_hosts_only(self):
        computer = RouteComputer(hosted_line().view(), switch_id(0))
        with pytest.raises(RoutingError):
            computer.host_route(switch_id(0), host_id(1))

    def test_path_inflation_on_updown_hostile_topology(self):
        """A cross edge between same-level leaves is unusable downhill
        both ways, inflating some route beyond the unrestricted length."""
        topo = Topology()
        for i in range(5):
            topo.add_switch(i)
        topo.connect("s0", "s1")
        topo.connect("s0", "s2")
        topo.connect("s1", "s3")
        topo.connect("s2", "s4")
        topo.connect("s3", "s4")  # cross edge between level-2 switches
        computer = RouteComputer(topo.view(), switch_id(0))
        restricted, free = computer.path_inflation(switch_id(3), switch_id(4))
        assert free == 1
        assert restricted >= 1  # may use the cross edge (one direction!)
        # One of the two directions across the cross edge must be up;
        # the reverse direction therefore pays the penalty.
        r2, f2 = computer.path_inflation(switch_id(4), switch_id(3))
        assert {restricted, r2} == {1, 3} or restricted == r2 == 1

    def test_unrestricted_mode(self):
        computer = RouteComputer(
            hosted_line().view(), switch_id(0), restrict_updown=False
        )
        route = computer.host_route(host_id(0), host_id(1))
        assert route.n_switches == 3


class TestHelpers:
    def test_port_on(self):
        edge = ((switch_id(0), 3), (switch_id(1), 7))
        assert port_on(edge, switch_id(0)) == 3
        assert port_on(edge, switch_id(1)) == 7
        with pytest.raises(ValueError):
            port_on(edge, switch_id(9))

    def test_switch_hops_of_skips_endpoints(self):
        view = hosted_line().view()
        computer = RouteComputer(view, switch_id(0))
        route = computer.host_route(host_id(0), host_id(1))
        hops = switch_hops_of(route.nodes, route.edges)
        assert [h[0] for h in hops] == [switch_id(0), switch_id(1), switch_id(2)]


class TestCircuits:
    def test_allocator_monotonic_and_reserved_floor(self):
        allocator = VcAllocator()
        first = allocator.allocate()
        second = allocator.allocate()
        assert first == FIRST_DATA_VC
        assert second == first + 1
        with pytest.raises(ValueError):
            VcAllocator(first=3)

    def test_circuit_flags(self):
        circuit = VirtualCircuit(
            vc=20,
            source=host_id(0),
            destination=host_id(1),
            traffic_class=TrafficClass.GUARANTEED,
            cells_per_frame=8,
        )
        assert circuit.is_guaranteed
        assert circuit.state is CircuitState.SETTING_UP
