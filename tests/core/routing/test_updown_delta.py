"""Incremental orientation repair must equal a from-scratch rebuild.

The contract under test: for any :class:`TopologyDelta` applied to an
existing :class:`UpDownOrientation`, ``apply_delta`` produces an
orientation whose levels, structure digest, and every
``shortest_legal_path`` answer are identical to rebuilding
``UpDownOrientation(delta.apply_to(view), root)`` from nothing -- and it
raises ``ValueError`` exactly when the rebuild would (disconnection).
"""

import random
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._types import switch_id
from repro.core.routing.paths import RouteComputer
from repro.core.routing.updown import UpDownOrientation
from repro.net.topogen import fat_tree
from repro.net.topology import Topology, TopologyDelta, TopologyError, TopologyView


def switch_edges_of(view):
    return sorted(
        edge
        for edge in view.edges
        if edge[0][0].is_switch and edge[1][0].is_switch
    )


def assert_equivalent(base, delta, queries=40, seed=0):
    """apply_delta(delta) == from-scratch rebuild, or both raise."""
    try:
        incremental = base.apply_delta(delta)
    except ValueError:
        with pytest.raises(ValueError):
            UpDownOrientation(delta.apply_to(base.view), base.root)
        return None
    rebuilt = UpDownOrientation(delta.apply_to(base.view), base.root)
    assert incremental.levels == rebuilt.levels
    assert incremental.structure_digest() == rebuilt.structure_digest()
    rng = random.Random(seed)
    switches = sorted(incremental.levels)
    for _ in range(queries):
        a, b = rng.choice(switches), rng.choice(switches)
        assert incremental.shortest_legal_path(
            a, b
        ) == rebuilt.shortest_legal_path(a, b)
    return incremental


def random_topology(seed, n_switches=14, extra_edges=8):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        return Topology.random_connected(
            n_switches, extra_edges=extra_edges, rng=random.Random(seed)
        )


class TestTopologyDelta:
    def test_between_and_apply_roundtrip(self):
        old = Topology.ring(5).view()
        new = Topology.line(5).view()
        delta = TopologyDelta.between(old, new)
        assert delta.apply_to(old) == new
        assert delta.invert().apply_to(new) == old

    def test_empty_delta(self):
        view = Topology.ring(4).view()
        delta = TopologyDelta.between(view, view)
        assert delta.is_empty
        assert len(delta) == 0
        assert delta.apply_to(view) == view

    def test_removing_absent_edge_rejected(self):
        view = Topology.line(3).view()
        absent = Topology.ring(5).view()
        missing = (sorted(absent.edges - view.edges))[0]
        with pytest.raises(TopologyError):
            TopologyDelta(removed=frozenset([missing])).apply_to(view)

    def test_adding_present_edge_rejected(self):
        view = Topology.line(3).view()
        present = sorted(view.edges)[0]
        with pytest.raises(TopologyError):
            TopologyDelta(added=frozenset([present])).apply_to(view)

    def test_adding_to_occupied_port_rejected(self):
        view = Topology.line(3).view()
        # s0 port 0 is already cabled to s1; a second cable on the same
        # (node, port) slot is physically impossible.
        conflicting = ((switch_id(0), 0), (switch_id(2), 7))
        with pytest.raises(TopologyError):
            TopologyDelta(added=frozenset([conflicting])).apply_to(view)

    def test_switch_endpoints(self):
        view = Topology.line(3).view()
        edge = sorted(view.edges)[0]
        delta = TopologyDelta(removed=frozenset([edge]))
        assert delta.switch_endpoints() == {switch_id(0), switch_id(1)}


class TestIncrementalEqualsRebuild:
    def test_single_edge_removal_on_fat_tree(self):
        structured = fat_tree(4)
        view = structured.view()
        base = UpDownOrientation(view, structured.default_root())
        for edge in switch_edges_of(view)[:8]:
            assert_equivalent(
                base, TopologyDelta(removed=frozenset([edge]))
            )

    def test_single_edge_addback_on_fat_tree(self):
        structured = fat_tree(4)
        view = structured.view()
        root = structured.default_root()
        for edge in switch_edges_of(view)[:6]:
            smaller = TopologyView(view.edges - {edge})
            base = UpDownOrientation(smaller, root)
            assert_equivalent(base, TopologyDelta(added=frozenset([edge])))

    def test_disconnecting_delta_raises_like_rebuild(self):
        # Cutting a line in the middle strands the far half: both the
        # incremental path and the rebuild must reject the new view.
        view = Topology.line(6).view()
        base = UpDownOrientation(view, switch_id(0))
        middle = switch_edges_of(view)[2]
        with pytest.raises(ValueError, match="not connected"):
            base.apply_delta(TopologyDelta(removed=frozenset([middle])))

    def test_delta_that_empties_the_view_raises(self):
        view = Topology.line(2).view()
        base = UpDownOrientation(view, switch_id(0))
        delta = TopologyDelta(removed=view.edges)
        with pytest.raises(ValueError):
            base.apply_delta(delta)

    def test_warm_cache_migration_is_query_neutral(self):
        structured = fat_tree(4)
        view = structured.view()
        base = UpDownOrientation(view, structured.default_root())
        switches = sorted(base.levels)
        for a in switches:
            for b in switches:
                base.shortest_legal_path(a, b)
        edge = switch_edges_of(view)[5]
        assert_equivalent(
            base, TopologyDelta(removed=frozenset([edge])), queries=120
        )

    def test_chained_deltas(self):
        # Apply a sequence of deltas, each to the previous incremental
        # result -- errors must not accumulate.
        structured = fat_tree(4)
        current = UpDownOrientation(
            structured.view(), structured.default_root()
        )
        rng = random.Random(11)
        for _ in range(6):
            edges = switch_edges_of(current.view)
            edge = rng.choice(edges)
            result = assert_equivalent(
                current, TopologyDelta(removed=frozenset([edge]))
            )
            if result is not None:
                current = result

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_removed=st.integers(min_value=1, max_value=4),
        pick=st.randoms(use_true_random=False),
    )
    def test_random_multi_edge_deltas(self, seed, n_removed, pick):
        topo = random_topology(seed)
        view = topo.view()
        root = sorted(view.switches())[-1]
        base = UpDownOrientation(view, root)
        edges = switch_edges_of(view)
        removed = frozenset(pick.sample(edges, min(n_removed, len(edges))))
        assert_equivalent(base, TopologyDelta(removed=removed), queries=25)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_changed=st.integers(min_value=1, max_value=3),
        pick=st.randoms(use_true_random=False),
    )
    def test_random_mixed_deltas(self, seed, n_changed, pick):
        # Remove a few edges from the full view first, then test a mixed
        # delta that adds some back while removing others.
        topo = random_topology(seed, n_switches=12, extra_edges=10)
        full = topo.view()
        root = sorted(full.switches())[-1]
        edges = switch_edges_of(full)
        held_out = pick.sample(edges, min(n_changed, len(edges)))
        start = TopologyView(full.edges - set(held_out))
        try:
            base = UpDownOrientation(start, root)
        except ValueError:
            return  # held-out edges disconnected the start view
        remaining = switch_edges_of(start)
        removed = frozenset(
            pick.sample(remaining, min(n_changed, len(remaining)))
        )
        delta = TopologyDelta(added=frozenset(held_out), removed=removed)
        assert_equivalent(base, delta, queries=25)


class TestRouteComputerWithView:
    def test_with_view_matches_fresh_computer(self):
        structured = fat_tree(4, hosts_per_edge=1)
        view = structured.view()
        root = structured.default_root()
        computer = RouteComputer(view, root)
        edge = switch_edges_of(view)[3]
        new_view = TopologyView(view.edges - {edge})
        incremental = computer.with_view(new_view, epoch="e2")
        fresh = RouteComputer(new_view, root, epoch="e2")
        assert incremental.incremental and not fresh.incremental
        assert (
            incremental.orientation.structure_digest()
            == fresh.orientation.structure_digest()
        )
        hosts = structured.topology.hosts()
        for a, b in [(hosts[0], hosts[-1]), (hosts[2], hosts[5])]:
            assert (
                incremental.host_route(a, b).edges
                == fresh.host_route(a, b).edges
            )

    def test_with_view_patches_host_attachments(self):
        structured = fat_tree(4, hosts_per_edge=1)
        view = structured.view()
        root = structured.default_root()
        computer = RouteComputer(view, root)
        host = structured.topology.hosts()[0]
        (host_edge,) = [
            edge
            for edge in view.edges
            if host in (edge[0][0], edge[1][0])
        ]
        new_view = TopologyView(view.edges - {host_edge})
        incremental = computer.with_view(new_view)
        fresh = RouteComputer(new_view, root)
        assert incremental._host_ports == fresh._host_ports

    def test_with_view_raises_on_disconnection(self):
        view = Topology.line(4).view()
        computer = RouteComputer(view, switch_id(0))
        cut = switch_edges_of(view)[1]
        with pytest.raises(ValueError):
            computer.with_view(TopologyView(view.edges - {cut}))
