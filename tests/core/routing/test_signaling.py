"""Circuit setup signaling over real networks."""

import pytest

from repro._types import host_id, switch_id
from repro.core.routing.signaling import SetupRequest, TeardownRequest
from repro.net.cell import Cell, CellKind
from repro.net.packet import Packet
from tests.conftest import converged_line, fast_switch_config
from repro.net.network import Network
from repro.net.topology import Topology


def test_setup_installs_entries_hop_by_hop(small_net):
    circuit = small_net.setup_circuit("h0", "h1")
    for sid in ("s0", "s1", "s2"):
        switch = small_net.switch(sid)
        in_port = switch._vc_in_port.get(circuit.vc)
        assert in_port is not None
        entry = switch.cards[in_port].routing_table.lookup(circuit.vc)
        assert entry is not None
        assert entry.request.destination == host_id(1)


def test_destination_host_learns_circuit(small_net):
    circuit = small_net.setup_circuit("h0", "h1")
    assert circuit.vc in small_net.host("h1").incoming_circuits


def test_cells_sent_right_after_setup_are_buffered_not_lost(small_net):
    """"Cells for the new virtual circuit may be sent immediately after
    the setup cell... they will be buffered until the routing table entry
    is filled in."""
    net = small_net
    circuit = net.setup_circuit("h0", "h1", wait=False)
    net.host("h0").send_packet(
        circuit.vc,
        Packet(source=host_id(0), destination=host_id(1), payload=b"races"),
    )
    net.run(100_000)
    delivered = net.host("h1").delivered
    assert len(delivered) == 1
    assert delivered[0].payload == b"races"


def test_teardown_removes_state(small_net):
    net = small_net
    circuit = net.setup_circuit("h0", "h1")
    net.host("h0").close_circuit(circuit.vc)
    net.run(50_000)
    for sid in ("s0", "s1", "s2"):
        switch = net.switch(sid)
        assert circuit.vc not in switch._vc_in_port
    assert circuit.vc not in net.host("h1").incoming_circuits


def test_setup_toward_unknown_host_fails_cleanly(small_net):
    net = small_net
    request = SetupRequest(vc=999, source=host_id(0), destination=host_id(42))
    net.host("h0").active_port.send(
        Cell(vc=1, kind=CellKind.SIGNALING, payload=request)
    )
    net.run(20_000)
    assert net.switch("s0").signaling.setups_failed >= 1
    assert 999 not in net.switch("s0")._vc_in_port


def test_multiple_circuits_share_links_independently(small_net):
    net = small_net
    a = net.setup_circuit("h0", "h1")
    b = net.setup_circuit("h0", "h1")
    assert a.vc != b.vc
    net.host("h0").send_packet(
        a.vc, Packet(source=host_id(0), destination=host_id(1), payload=b"A" * 200)
    )
    net.host("h0").send_packet(
        b.vc, Packet(source=host_id(0), destination=host_id(1), payload=b"B" * 200)
    )
    net.run(100_000)
    payloads = sorted(p.payload[:1] for p in net.host("h1").delivered)
    assert payloads == [b"A", b"B"]


def test_reverse_circuit_works(small_net):
    net = small_net
    circuit = net.setup_circuit("h1", "h0")
    net.host("h1").send_packet(
        circuit.vc,
        Packet(source=host_id(1), destination=host_id(0), payload=b"back"),
    )
    net.run(100_000)
    assert [p.payload for p in net.host("h0").delivered] == [b"back"]


def test_setup_follows_updown_legal_route():
    """On a topology where the unrestricted shortest path is illegal,
    signaling must take the legal one."""
    topo = Topology()
    for i in range(5):
        topo.add_switch(i)
    # Tree rooted (by id tie-breaks) with a cross edge:
    topo.connect("s0", "s1")
    topo.connect("s0", "s2")
    topo.connect("s1", "s3")
    topo.connect("s2", "s4")
    topo.connect("s3", "s4")
    topo.add_host(0)
    topo.add_host(1)
    topo.connect("h0", "s3", port_a=0)
    topo.connect("h1", "s4", port_a=0)
    net = Network(topo, seed=5, switch_config=fast_switch_config())
    net.start()
    net.run_until_converged(timeout_us=500_000)
    circuit = net.setup_circuit("h0", "h1", timeout_us=200_000)
    # Verify the installed path is legal w.r.t. the winning orientation.
    from repro.core.routing.reroute import installed_path

    path = installed_path(net, circuit.vc, host_id(0))
    assert path[0] == host_id(0) and path[-1] == host_id(1)
    switches = [n for n in path if n.is_switch]
    computer = net.switch("s0").route_computer()
    orientation = computer.orientation
    went_down = False
    for a, b in zip(switches, switches[1:]):
        edge = next(
            e
            for e in computer.view.edges
            if {e[0][0], e[1][0]} == {a, b}
        )
        if orientation.is_up_traversal(edge, a):
            assert not went_down, "down-then-up on installed path"
        else:
            went_down = True
