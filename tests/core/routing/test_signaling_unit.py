"""Unit tests for the signaling agent over a fake transport.

The network-level tests exercise the full path; these pin down the
agent's own decisions (output choice, failure accounting, teardown
forwarding, multicast branching) in isolation.
"""

from typing import Dict, List, Optional, Tuple

import pytest

from repro._types import host_id, switch_id
from repro.core.routing.multicast import MulticastSetupRequest
from repro.core.routing.paths import RouteComputer
from repro.core.routing.signaling import (
    SetupRequest,
    SignalingAgent,
    TeardownRequest,
)
from repro.net.topology import Topology


class FakeSignalingTransport:
    """Records installs and sends; routes over a static view."""

    def __init__(self, view, me, root, attached_hosts=None):
        self.computer = RouteComputer(view, root)
        self.me = me
        self.attached = attached_hosts or {}
        self.installed: List[Tuple[int, int, int]] = []  # vc, in, out
        self.multicast_installed: List[Tuple[int, int, frozenset]] = []
        self.removed: List[int] = []
        self.sent: List[Tuple[int, object]] = []
        self.circuits: Dict[int, Tuple[int, int]] = {}

    def route_computer(self):
        return self.computer

    def attached_host_port(self, host) -> Optional[int]:
        return self.attached.get(host)

    def install_circuit(self, vc, in_port, out_port, request):
        self.installed.append((vc, in_port, out_port))
        self.circuits[vc] = (in_port, out_port)

    def install_multicast(self, vc, in_port, out_ports, request):
        self.multicast_installed.append((vc, in_port, frozenset(out_ports)))

    def remove_circuit(self, vc):
        self.removed.append(vc)
        return self.circuits.pop(vc, None)

    def send_signaling(self, port_index, message):
        self.sent.append((port_index, message))


def diamond_view():
    topo = Topology()
    for i in range(4):
        topo.add_switch(i)
    topo.connect("s0", "s1")
    topo.connect("s1", "s3")
    topo.connect("s0", "s2")
    topo.connect("s2", "s3")
    topo.add_host(0)
    topo.add_host(1)
    topo.connect("h0", "s0", port_a=0)
    topo.connect("h1", "s3", port_a=0)
    return topo.view()


def make_agent(me=0, attached=None):
    transport = FakeSignalingTransport(
        diamond_view(), switch_id(me), switch_id(0), attached
    )
    return SignalingAgent(switch_id(me), transport), transport


class TestUnicastSetup:
    def test_forwards_toward_destination(self):
        agent, transport = make_agent(me=0)
        request = SetupRequest(vc=20, source=host_id(0), destination=host_id(1))
        agent.handle(5, request)
        assert len(transport.installed) == 1
        vc, in_port, out_port = transport.installed[0]
        assert (vc, in_port) == (20, 5)
        (sent_port, sent_message), = transport.sent
        assert sent_port == out_port
        assert sent_message.hop_count == 1

    def test_final_hop_delivers_to_host_port(self):
        agent, transport = make_agent(me=3, attached={host_id(1): 7})
        request = SetupRequest(vc=21, source=host_id(0), destination=host_id(1))
        agent.handle(2, request)
        assert transport.installed == [(21, 2, 7)]
        assert transport.sent[0][0] == 7

    def test_unknown_destination_fails(self):
        agent, transport = make_agent(me=0)
        agent.handle(1, SetupRequest(vc=9, source=host_id(0), destination=host_id(9)))
        assert agent.setups_failed == 1
        assert transport.installed == []

    def test_hop_limit(self):
        agent, transport = make_agent(me=0)
        agent.handle(
            1,
            SetupRequest(
                vc=9, source=host_id(0), destination=host_id(1), hop_count=64
            ),
        )
        assert agent.setups_failed == 1

    def test_no_view_fails_cleanly(self):
        agent, transport = make_agent(me=0)
        transport.computer = None
        agent.handle(1, SetupRequest(vc=9, source=host_id(0), destination=host_id(1)))
        assert agent.setups_failed == 1

    def test_unknown_message_rejected(self):
        agent, _ = make_agent()
        with pytest.raises(TypeError):
            agent.handle(0, object())


class TestTeardown:
    def test_forwards_along_installed_path(self):
        agent, transport = make_agent(me=0)
        agent.handle(5, SetupRequest(vc=30, source=host_id(0), destination=host_id(1)))
        transport.sent.clear()
        agent.handle(5, TeardownRequest(vc=30))
        assert transport.removed == [30]
        assert len(transport.sent) == 1
        assert isinstance(transport.sent[0][1], TeardownRequest)

    def test_unknown_vc_not_forwarded(self):
        agent, transport = make_agent(me=0)
        agent.handle(5, TeardownRequest(vc=99))
        assert transport.sent == []


class TestMulticastBranching:
    def test_destinations_grouped_by_next_hop(self):
        # At s0: h1 is through the core; a locally attached host h0 would
        # be its own branch.
        agent, transport = make_agent(me=0, attached={host_id(0): 9})
        request = MulticastSetupRequest(
            vc=40,
            source=host_id(1),
            destinations=frozenset({host_id(0), host_id(1)}),
        )
        # h1 not local -> via core; h0 local -> port 9.  (Using h1 as both
        # source and member is odd but legal for the branching logic.)
        agent.handle(3, request)
        assert len(transport.multicast_installed) == 1
        vc, in_port, out_ports = transport.multicast_installed[0]
        assert vc == 40 and in_port == 3
        assert 9 in out_ports and len(out_ports) == 2
        assert len(transport.sent) == 2
        for port, message in transport.sent:
            assert isinstance(message, MulticastSetupRequest)
            assert message.hop_count == 1

    def test_all_unreachable_fails(self):
        agent, transport = make_agent(me=0)
        agent.handle(
            1,
            MulticastSetupRequest(
                vc=41,
                source=host_id(0),
                destinations=frozenset({host_id(7), host_id(8)}),
            ),
        )
        assert agent.setups_failed == 1
        assert transport.multicast_installed == []
