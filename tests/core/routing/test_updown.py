"""Tests for up*/down* orientation and legal-path search."""

import random

import pytest

from repro._types import switch_id
from repro.core.flowcontrol.deadlock import fifo_wait_for_graph
from repro.core.routing.updown import UpDownOrientation
from repro.net.topology import Topology


def orient(topo, root=0):
    return UpDownOrientation(topo.view(), switch_id(root))


class TestOrientation:
    def test_levels_are_bfs_depths(self):
        topo = Topology.line(4)
        orientation = orient(topo)
        assert [orientation.levels[switch_id(i)] for i in range(4)] == [
            0, 1, 2, 3,
        ]

    def test_up_is_toward_root(self):
        topo = Topology.line(3)
        orientation = orient(topo)
        edge = sorted(topo.view().edges)[0]  # s0 - s1
        assert orientation.up_end(edge) == switch_id(0)
        assert orientation.is_up_traversal(edge, switch_id(1))
        assert not orientation.is_up_traversal(edge, switch_id(0))

    def test_same_level_tie_breaks_to_higher_id(self):
        """Paper: "up is toward the higher-numbered switch"."""
        topo = Topology()
        for i in range(3):
            topo.add_switch(i)
        topo.connect("s0", "s1")
        topo.connect("s0", "s2")
        topo.connect("s1", "s2")  # s1, s2 both at level 1
        orientation = orient(topo)
        cross = next(
            e
            for e in topo.view().edges
            if {e[0][0], e[1][0]} == {switch_id(1), switch_id(2)}
        )
        assert orientation.up_end(cross) == switch_id(2)

    def test_non_switch_root_rejected(self):
        from repro._types import host_id

        topo = Topology.line(2)
        with pytest.raises(ValueError):
            UpDownOrientation(topo.view(), host_id(0))

    def test_disconnected_view_rejected_at_construction(self):
        # Two separate line components in one view: switches unreachable
        # from the root used to surface only later as a cryptic up_end
        # ValueError on the first query that touched them.  Construction
        # now names the problem immediately.
        from repro.net.topology import view_from_edges

        a = Topology.line(2).view()
        b = Topology.line(2).view()
        shifted = frozenset(
            (
                (switch_id(int(str(na)[1:]) + 10), pa),
                (switch_id(int(str(nb)[1:]) + 10), pb),
            )
            for (na, pa), (nb, pb) in b.edges
        )
        view = view_from_edges(a.edges | shifted)
        with pytest.raises(ValueError, match="not connected from root"):
            UpDownOrientation(view, switch_id(0))


class TestLegality:
    def test_up_then_down_is_legal(self):
        topo = Topology.star(3)  # s0 hub; leaves s1..s3
        orientation = orient(topo)
        path = orientation.shortest_legal_path(switch_id(1), switch_id(2))
        assert path is not None
        nodes, edges = path
        assert nodes == [switch_id(1), switch_id(0), switch_id(2)]
        assert orientation.path_is_legal(nodes, edges)

    def test_down_then_up_is_illegal(self):
        topo = Topology.star(3)
        orientation = orient(topo)
        # Walk s1 <- s0 -> s2 backwards: from s0 down to s1 is fine; a
        # fabricated path s1 -> s0 -> s1 is nonsense; construct explicitly:
        view = topo.view()
        e01 = next(
            e for e in view.edges if {e[0][0], e[1][0]} == {switch_id(0), switch_id(1)}
        )
        e02 = next(
            e for e in view.edges if {e[0][0], e[1][0]} == {switch_id(0), switch_id(2)}
        )
        # s0 -> s1 (down), then s1 -> s0 (up) is a down-then-up violation.
        nodes = [switch_id(0), switch_id(1), switch_id(0)]
        assert not orientation.path_is_legal(nodes, [e01, e01])
        # s1 -> s0 (up) then s0 -> s2 (down): fine.
        assert orientation.path_is_legal(
            [switch_id(1), switch_id(0), switch_id(2)], [e01, e02]
        )

    def test_legal_path_exists_between_all_pairs(self):
        """Up*/down* always connects a connected network: via the root if
        nothing shorter."""
        for seed in range(5):
            topo = Topology.random_connected(
                10, extra_edges=6, rng=random.Random(seed)
            )
            orientation = orient(topo, root=0)
            switches = topo.switches()
            for a in switches:
                for b in switches:
                    if a == b:
                        continue
                    assert orientation.shortest_legal_path(a, b) is not None

    def test_legal_paths_returned_are_legal_and_shortest_legal(self):
        for seed in range(3):
            topo = Topology.random_connected(
                8, extra_edges=5, rng=random.Random(seed)
            )
            orientation = orient(topo)
            switches = topo.switches()
            for a in switches:
                for b in switches:
                    if a == b:
                        continue
                    path = orientation.shortest_legal_path(a, b)
                    nodes, edges = path
                    assert nodes[0] == a and nodes[-1] == b
                    assert orientation.path_is_legal(nodes, edges)
                    unrestricted = orientation.shortest_unrestricted_path(a, b)
                    assert len(edges) >= len(unrestricted[1])

    def test_blocked_edges_respected(self):
        topo = Topology.line(3)
        orientation = orient(topo)
        edge = sorted(topo.view().edges)[0]
        path = orientation.shortest_legal_path(
            switch_id(0), switch_id(1), blocked_edges=frozenset({edge})
        )
        assert path is None

    def test_trivial_path(self):
        topo = Topology.line(2)
        orientation = orient(topo)
        nodes, edges = orientation.shortest_legal_path(switch_id(0), switch_id(0))
        assert nodes == [switch_id(0)] and edges == []


class TestDeadlockFreedom:
    def test_legal_routes_never_cycle_fifo_graph(self):
        """The theorem up*/down* exists for: the FIFO wait-for graph of
        any set of legal routes is acyclic."""
        for seed in range(6):
            rng = random.Random(seed)
            topo = Topology.random_connected(9, extra_edges=8, rng=rng)
            orientation = orient(topo, root=rng.randrange(9))
            routes = []
            switches = topo.switches()
            for _ in range(25):
                a, b = rng.sample(switches, 2)
                nodes, _ = orientation.shortest_legal_path(a, b)
                routes.append(nodes)
            assert not fifo_wait_for_graph(routes).has_cycle()

    def test_unrestricted_routes_can_cycle(self):
        """Contrast: unrestricted shortest paths on a ring produce the
        classic circular wait."""
        topo = Topology.ring(6)
        orientation = orient(topo)
        routes = []
        for i in range(6):
            a, b = switch_id(i), switch_id((i + 2) % 6)
            # Force the cyclic direction: i -> i+1 -> i+2.
            routes.append([switch_id(i), switch_id((i + 1) % 6), b])
        assert fifo_wait_for_graph(routes).has_cycle()


class TestNextHop:
    def test_next_hop_walks_to_destination_legally(self):
        for seed in range(3):
            rng = random.Random(seed)
            topo = Topology.random_connected(8, extra_edges=4, rng=rng)
            orientation = orient(topo)
            switches = topo.switches()
            for a in switches:
                for b in switches:
                    if a == b:
                        continue
                    here, gone_down, hops = a, False, 0
                    while here != b:
                        hop = orientation.next_hop(here, b, gone_down)
                        assert hop is not None, f"stuck at {here} for {b}"
                        neighbor, edge = hop
                        if not orientation.is_up_traversal(edge, here):
                            gone_down = True
                        here = neighbor
                        hops += 1
                        assert hops <= 16, "next_hop loop"

    def test_next_hop_respects_gone_down(self):
        # In a star, after going down to a leaf there is no legal
        # continuation to a sibling leaf.
        topo = Topology.star(3)
        orientation = orient(topo)
        hop = orientation.next_hop(
            switch_id(1), switch_id(2), arrived_downward=True
        )
        assert hop is None
