"""Tests for the epoch-keyed route cache.

The memo in :class:`UpDownOrientation` must be invisible to every
caller: identical paths with the cache on or off (down to the replay
digest), fresh list copies on hits, no caching of per-call
``blocked_edges`` queries, and eviction-by-epoch -- a reconfiguration
installs a new orientation, so stale pre-cut paths can never leak into
the new epoch.
"""

import pytest

from repro._types import switch_id
from repro.conform.digest import digest_scenario
from repro.core.routing.paths import RouteComputer
from repro.core.routing.updown import (
    UpDownOrientation,
    path_cache_enabled,
    set_path_cache_enabled,
)
from repro.net.network import Network
from repro.net.topology import Topology
from repro.sim.random import derived_stream
from tests.conftest import fast_host_config, fast_switch_config


@pytest.fixture
def cache_on():
    previous = set_path_cache_enabled(True)
    yield
    set_path_cache_enabled(previous)


def random_orientation(seed=3, n=10):
    topo = Topology.random_connected(
        n, extra_edges=4, rng=derived_stream("test/route_cache", seed)
    )
    view = topo.view()
    return UpDownOrientation(view, view.switches()[0]), view


class TestMemo:
    def test_second_query_hits(self, cache_on):
        orientation, view = random_orientation()
        a, b = view.switches()[0], view.switches()[-1]
        first = orientation.shortest_legal_path(a, b)
        assert orientation.cache_misses == 1
        assert orientation.cache_hits == 0
        second = orientation.shortest_legal_path(a, b)
        assert orientation.cache_hits == 1
        assert first == second

    def test_hits_return_fresh_copies(self, cache_on):
        orientation, view = random_orientation()
        a, b = view.switches()[0], view.switches()[-1]
        orientation.shortest_legal_path(a, b)
        hit = orientation.shortest_legal_path(a, b)
        hit[0].clear()
        hit[1].clear()
        unharmed = orientation.shortest_legal_path(a, b)
        assert unharmed[0] and unharmed[0][0] == a

    def test_unreachable_answer_is_cached(self, cache_on):
        topo = Topology()
        topo.add_switch(0)
        topo.add_switch(1)
        topo.connect("s0", "s1")
        topo.add_switch(2)  # isolated
        view = topo.view()
        orientation = UpDownOrientation(view, switch_id(0))
        assert orientation.shortest_legal_path(
            switch_id(0), switch_id(2)
        ) is None
        assert orientation.shortest_legal_path(
            switch_id(0), switch_id(2)
        ) is None
        assert orientation.cache_hits == 1

    def test_blocked_edges_queries_bypass_the_memo(self, cache_on):
        orientation, view = random_orientation()
        a, b = view.switches()[0], view.switches()[-1]
        unblocked = orientation.shortest_legal_path(a, b)
        blocked_edge = frozenset([unblocked[1][0]])
        hits_before = orientation.cache_hits
        misses_before = orientation.cache_misses
        detour = orientation.shortest_legal_path(
            a, b, blocked_edges=blocked_edge
        )
        assert orientation.cache_hits == hits_before
        assert orientation.cache_misses == misses_before
        if detour is not None:
            assert unblocked[1][0] not in detour[1]
        # ...and the blocked answer must not have poisoned the memo.
        assert orientation.shortest_legal_path(a, b) == unblocked

    def test_disabled_cache_never_hits(self):
        previous = set_path_cache_enabled(False)
        try:
            assert not path_cache_enabled()
            orientation, view = random_orientation()
            a, b = view.switches()[0], view.switches()[-1]
            first = orientation.shortest_legal_path(a, b)
            second = orientation.shortest_legal_path(a, b)
            assert first == second
            assert orientation.cache_hits == 0
            assert orientation.cache_misses == 0
        finally:
            set_path_cache_enabled(previous)

    def test_cached_equals_uncached_everywhere(self, cache_on):
        """Every query kind agrees with the cache off -- the memo is a
        pure memo."""
        orientation, view = random_orientation(seed=9, n=12)
        shadow, _ = random_orientation(seed=9, n=12)
        previous = set_path_cache_enabled(False)
        try:
            switches = view.switches()
            for a in switches:
                for b in switches:
                    set_path_cache_enabled(True)
                    cached = orientation.shortest_legal_path(a, b)
                    cached_free = orientation.shortest_unrestricted_path(a, b)
                    set_path_cache_enabled(False)
                    assert shadow.shortest_legal_path(a, b) == cached
                    assert shadow.shortest_unrestricted_path(a, b) == cached_free
        finally:
            set_path_cache_enabled(previous)


class TestEpochEviction:
    def grid_net(self, seed=11):
        topo = Topology.grid(3, 3)
        topo.add_host(0)
        topo.add_host(1)
        topo.connect("h0", "s0", port_a=0)
        topo.connect("h1", "s8", port_a=0)
        net = Network(
            topo,
            seed=seed,
            switch_config=fast_switch_config(),
            host_config=fast_host_config(),
        )
        net.start()
        net.run_until(net.fully_reconfigured, timeout_us=500_000)
        return net

    def test_reconfiguration_installs_a_new_computer(self, cache_on):
        """A new epoch means a new RouteComputer (hence an empty memo):
        cutting a trunk on the cached route must change the answer."""
        net = self.grid_net()
        switch = net.switch("s0")
        computer = switch.route_computer()
        assert computer is not None
        before = computer.switch_route(switch_id(0), switch_id(8))
        # Warm the memo, then cut the first trunk the route uses.
        again = computer.switch_route(switch_id(0), switch_id(8))
        assert again == before
        assert computer.orientation.cache_hits >= 1
        first_edge = before[1][0]
        (node_a, _), (node_b, _) = first_edge
        net.fail_link(node_a, node_b)
        net.run_until(net.fully_reconfigured, timeout_us=1_000_000)
        fresh = switch.route_computer()
        assert fresh is not None
        assert fresh is not computer, "reconfiguration must evict by epoch"
        assert fresh.epoch != computer.epoch
        after = fresh.switch_route(switch_id(0), switch_id(8))
        assert first_edge not in after[1], (
            "post-reconfiguration route still uses the severed cable"
        )

    def test_route_cache_gauges_exposed(self, cache_on):
        net = self.grid_net()
        computer = net.switch("s0").route_computer()
        computer.switch_route(switch_id(0), switch_id(8))
        computer.switch_route(switch_id(0), switch_id(8))
        snapshot = net.registry.snapshot()
        gauges = snapshot["switch.s0.routing"]["gauges"]
        assert gauges["route_cache_misses"] >= 1
        assert gauges["route_cache_hits"] >= 1


class TestDigestNeutrality:
    def test_digest_identical_with_cache_on_and_off(self):
        previous = set_path_cache_enabled(True)
        try:
            with_cache = digest_scenario(5, duration_us=40_000.0)
            set_path_cache_enabled(False)
            without_cache = digest_scenario(5, duration_us=40_000.0)
        finally:
            set_path_cache_enabled(previous)
        assert with_cache == without_cache, (
            "the route cache changed simulated behavior; it may only "
            "change how often the BFS runs"
        )
