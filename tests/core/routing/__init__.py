"""Test package."""
