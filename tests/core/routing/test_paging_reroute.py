"""Tests for the section-2 extensions: circuit paging, local reroute,
and the speculative load balancer."""

import pytest

from repro._types import host_id, switch_id
from repro.core.routing.load_balance import LoadBalancer
from repro.core.routing.paging import PagingDaemon
from repro.core.routing.reroute import circuits_crossing, installed_path
from repro.net.network import Network
from repro.net.packet import Packet
from repro.net.topology import Topology
from tests.conftest import fast_host_config, fast_switch_config, line_with_hosts


def paging_net(**overrides):
    net = line_with_hosts(3, enable_paging=True, paging_idle_us=5_000.0, **overrides)
    net.start()
    net.run_until_converged(timeout_us=500_000)
    return net


class TestPaging:
    def test_idle_circuit_paged_out_and_back_in(self):
        net = paging_net()
        circuit = net.setup_circuit("h0", "h1")
        h0, h1 = net.host("h0"), net.host("h1")
        h0.send_packet(
            circuit.vc,
            Packet(source=host_id(0), destination=host_id(1), payload=b"one"),
        )
        net.run(30_000)
        assert len(h1.delivered) == 1
        # Let it idle, then page out at s0.
        s0 = net.switch("s0")
        net.run(20_000)
        assert s0.page_out(circuit.vc)
        assert circuit.vc not in s0._vc_in_port
        assert s0.stats.page_outs == 1
        # Downstream cascade (s1, s2 idle too).
        net.run(5_000)
        assert net.switch("s1").stats.page_outs + net.switch("s2").stats.page_outs >= 1
        # New traffic pages it back in transparently.
        h0.send_packet(
            circuit.vc,
            Packet(source=host_id(0), destination=host_id(1), payload=b"two"),
        )
        net.run(60_000)
        assert [p.payload for p in h1.delivered] == [b"one", b"two"]
        assert s0.stats.page_ins == 1

    def test_daemon_pages_idle_circuits(self):
        net = paging_net()
        circuit = net.setup_circuit("h0", "h1")
        net.host("h0").send_packet(
            circuit.vc,
            Packet(source=host_id(0), destination=host_id(1), payload=b"x"),
        )
        net.run(10_000)
        daemon = PagingDaemon(
            net.switch("s0"), idle_threshold_us=5_000.0, scan_interval_us=2_000.0
        )
        daemon.start()
        net.run(20_000)
        assert daemon.pages_initiated >= 1
        assert circuit.vc not in net.switch("s0")._vc_in_port

    def test_active_circuit_not_paged(self):
        net = paging_net()
        circuit = net.setup_circuit("h0", "h1")
        daemon = PagingDaemon(
            net.switch("s0"), idle_threshold_us=1e9, scan_interval_us=2_000.0
        )
        daemon.start()
        net.host("h0").send_packet(
            circuit.vc,
            Packet(source=host_id(0), destination=host_id(1), payload=b"y"),
        )
        net.run(30_000)
        assert daemon.pages_initiated == 0
        assert len(net.host("h1").delivered) == 1

    def test_daemon_validation(self):
        net = paging_net()
        with pytest.raises(ValueError):
            PagingDaemon(net.switch("s0"), idle_threshold_us=0.0)


def diamond_net(**overrides):
    """h0 - s0 - {s1 | s2} - s3 - h1: two disjoint core paths."""
    topo = Topology()
    for i in range(4):
        topo.add_switch(i)
    topo.connect("s0", "s1")
    topo.connect("s1", "s3")
    topo.connect("s0", "s2")
    topo.connect("s2", "s3")
    topo.add_host(0)
    topo.add_host(1)
    topo.connect("h0", "s0", port_a=0, bps=622_000_000)
    topo.connect("h1", "s3", port_a=0, bps=622_000_000)
    net = Network(
        topo,
        seed=7,
        switch_config=fast_switch_config(enable_local_reroute=True, **overrides),
        host_config=fast_host_config(),
    )
    net.start()
    net.run_until_converged(timeout_us=500_000)
    return net


class TestLocalReroute:
    def test_circuit_rerouted_around_failed_link(self):
        net = diamond_net()
        circuit = net.setup_circuit("h0", "h1")
        path_before = installed_path(net, circuit.vc, host_id(0))
        mid_before = path_before[2]  # the core switch used
        other = switch_id(2) if mid_before == switch_id(1) else switch_id(1)
        net.fail_link("s0", str(mid_before))
        # Wait for detection + reroute.
        net.run_until(
            lambda: net.switch("s0").stats.reroutes >= 1, timeout_us=100_000
        )
        net.run(20_000)
        path_after = installed_path(net, circuit.vc, host_id(0))
        assert other in path_after
        # Traffic flows on the new path.
        net.host("h0").send_packet(
            circuit.vc,
            Packet(source=host_id(0), destination=host_id(1), payload=b"rerouted"),
        )
        net.run(60_000)
        assert [p.payload for p in net.host("h1").delivered] == [b"rerouted"]

    def test_unaffected_circuits_untouched(self):
        net = diamond_net()
        a = net.setup_circuit("h0", "h1")
        b = net.setup_circuit("h0", "h1")
        paths = {
            vc: installed_path(net, vc, host_id(0))[2] for vc in (a.vc, b.vc)
        }
        # Find a core link used by exactly one of them, if they diverge;
        # otherwise fail the unused path's link and assert nothing breaks.
        used = set(paths.values())
        unused_mid = (
            (switch_id(1) if switch_id(2) in used else switch_id(2))
            if len(used) == 1
            else None
        )
        if unused_mid is not None:
            net.fail_link("s0", str(unused_mid))
            net.run(50_000)
            assert net.switch("s0").stats.reroutes == 0
            crossing, clear = circuits_crossing(net, switch_id(0), unused_mid)
            assert crossing == []
            assert set(clear) >= {a.vc, b.vc}

    def test_broken_counted_when_no_detour(self):
        net = line_with_hosts(3, enable_local_reroute=True)
        net.start()
        net.run_until_converged(timeout_us=500_000)
        circuit = net.setup_circuit("h0", "h1")
        net.fail_link("s1", "s2")  # no alternative on a line
        net.run_until(
            lambda: net.switch("s1").stats.broken_circuits >= 1,
            timeout_us=100_000,
        )


class TestLoadBalancer:
    def test_hot_link_triggers_migration(self):
        net = diamond_net()
        circuits = [net.setup_circuit("h0", "h1") for _ in range(4)]
        # All circuits take the same (widest/deterministic) core path at
        # setup; saturate them so the shared core link runs hot.
        balancer = LoadBalancer(
            net, interval_us=5_000.0, high_watermark=0.3, cooldown_us=10_000.0
        )
        balancer.start()
        for circuit in circuits:
            net.host("h0").send_raw_cells(circuit.vc, 3_000)
        net.run(60_000)
        assert balancer.migrations >= 1
        mids = {
            installed_path(net, c.vc, host_id(0))[2] for c in circuits
        }
        assert len(mids) == 2  # circuits now spread over both core paths

    def test_watermark_validation(self):
        net = diamond_net()
        with pytest.raises(ValueError):
            LoadBalancer(net, high_watermark=0.0)
