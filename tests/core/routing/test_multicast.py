"""Tests for multicast virtual circuits."""

import pytest

from repro._types import host_id, switch_id
from repro.core.routing.multicast import FanoutToken, MulticastSetupRequest
from repro.net.network import Network
from repro.net.packet import Packet
from repro.net.topology import Topology
from tests.conftest import fast_host_config, fast_switch_config


def star_hosts_net(seed=3):
    """Four hosts on the corners of a 2x2 switch grid."""
    topo = Topology.grid(2, 2)
    for h in range(4):
        topo.add_host(h)
    for h, s in ((0, 0), (1, 1), (2, 2), (3, 3)):
        topo.connect(f"h{h}", f"s{s}", port_a=0, bps=622_000_000)
    net = Network(
        topo,
        seed=seed,
        switch_config=fast_switch_config(),
        host_config=fast_host_config(),
    )
    net.start()
    net.run_until_converged(timeout_us=500_000)
    return net


class TestFanoutToken:
    def test_drains_once(self):
        token = FanoutToken(remaining=3)
        assert not token.branch_departed()
        assert not token.branch_departed()
        assert token.branch_departed()
        with pytest.raises(ValueError):
            token.branch_departed()

    def test_request_validation(self):
        with pytest.raises(ValueError):
            MulticastSetupRequest(
                vc=1, source=host_id(0), destinations=frozenset()
            )


class TestSetup:
    def test_all_members_learn_circuit(self):
        net = star_hosts_net()
        circuit = net.setup_multicast("h0", ["h1", "h2", "h3"])
        for member in ("h1", "h2", "h3"):
            assert circuit.vc in net.host(member).incoming_circuits
        assert circuit.group == frozenset(
            {host_id(1), host_id(2), host_id(3)}
        )

    def test_tree_has_fanout_entry(self):
        net = star_hosts_net()
        circuit = net.setup_multicast("h0", ["h1", "h2", "h3"])
        fanouts = 0
        for switch in net.switches.values():
            in_port = switch._vc_in_port.get(circuit.vc)
            if in_port is None:
                continue
            entry = switch.cards[in_port].routing_table.lookup(circuit.vc)
            if entry.is_multicast:
                fanouts += 1
        assert fanouts >= 1  # s0 must branch toward {s1} and {s2, s3}

    def test_validation(self):
        net = star_hosts_net()
        with pytest.raises(ValueError):
            net.setup_multicast("h0", [])
        with pytest.raises(ValueError):
            net.setup_multicast("h0", ["h0", "h1"])

    def test_partial_group_with_unknown_member(self):
        net = star_hosts_net()
        circuit = net.setup_multicast("h0", ["h1", "h42"], wait=False)
        net.run(100_000)
        # The reachable member joins; somewhere a setup failure was
        # recorded for the phantom.
        assert circuit.vc in net.host("h1").incoming_circuits
        failures = sum(
            s.signaling.setups_failed for s in net.switches.values()
        )
        assert failures >= 1


class TestDelivery:
    def test_every_member_receives_every_packet(self):
        net = star_hosts_net()
        circuit = net.setup_multicast("h0", ["h1", "h2", "h3"])
        for index in range(5):
            net.host("h0").send_packet(
                circuit.vc,
                Packet(
                    source=host_id(0),
                    destination=host_id(1),
                    payload=bytes([index]) * 100,
                ),
            )
        net.run(400_000)
        for member in ("h1", "h2", "h3"):
            delivered = net.host(member).delivered
            assert len(delivered) == 5
            assert sorted(p.payload[0] for p in delivered) == [0, 1, 2, 3, 4]
        assert net.total_cells_dropped() == 0

    def test_credit_conservation_with_fanout(self):
        net = star_hosts_net()
        circuit = net.setup_multicast("h0", ["h1", "h2", "h3"])
        net.host("h0").send_packet(
            circuit.vc,
            Packet(source=host_id(0), destination=host_id(1), size=48 * 30),
        )
        net.run(400_000)
        for switch in net.switches.values():
            for card in switch.cards:
                for upstream in card.upstream.values():
                    assert upstream.balance == upstream.allocation
                for downstream in card.downstream.values():
                    assert downstream.occupied == 0

    def test_unicast_traffic_unaffected_by_multicast(self):
        net = star_hosts_net()
        mc = net.setup_multicast("h0", ["h1", "h2"])
        uc = net.setup_circuit("h3", "h1")
        net.host("h0").send_packet(
            mc.vc,
            Packet(source=host_id(0), destination=host_id(1), size=480),
        )
        net.host("h3").send_packet(
            uc.vc,
            Packet(source=host_id(3), destination=host_id(1), size=480),
        )
        net.run(300_000)
        assert len(net.host("h1").delivered) == 2
        assert len(net.host("h2").delivered) == 1


class TestInteractionGuards:
    def test_paging_skips_fanout_entries(self):
        net = star_hosts_net()
        circuit = net.setup_multicast("h0", ["h1", "h2", "h3"])
        net.run(20_000)
        s0 = net.switch("s0")
        if circuit.vc in s0._vc_in_port:
            assert not s0.page_out(circuit.vc)

    def test_reroute_counts_fanout_branch_broken(self):
        topo = Topology.grid(2, 2)
        for h in range(3):
            topo.add_host(h)
        topo.connect("h0", "s0", port_a=0, bps=622_000_000)
        topo.connect("h1", "s1", port_a=0, bps=622_000_000)
        topo.connect("h2", "s2", port_a=0, bps=622_000_000)
        net = Network(
            topo,
            seed=9,
            switch_config=fast_switch_config(enable_local_reroute=True),
            host_config=fast_host_config(),
        )
        net.start()
        net.run_until_converged(timeout_us=500_000)
        circuit = net.setup_multicast("h0", ["h1", "h2"])
        # Find a switch with the fanout entry and kill one branch link.
        s0 = net.switch("s0")
        in_port = s0._vc_in_port[circuit.vc]
        entry = s0.cards[in_port].routing_table.lookup(circuit.vc)
        assert entry.is_multicast
        branch = sorted(entry.out_ports)[0]
        neighbor = s0.cards[branch].monitor.neighbor[0]
        net.fail_link("s0", str(neighbor))
        net.run_until(
            lambda: s0.stats.broken_circuits >= 1, timeout_us=100_000
        )
