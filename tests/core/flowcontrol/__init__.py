"""Test package."""
