"""Tests for wait-for graphs: the FIFO deadlock cycle and per-VC safety."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro._types import switch_id
from repro.core.flowcontrol.deadlock import (
    WaitForGraph,
    fifo_wait_for_graph,
    per_vc_wait_for_graph,
)


def ring_routes(n):
    """Circular traffic on an n-ring: route i goes i -> i+1 -> i+2."""
    return [
        [switch_id(i), switch_id((i + 1) % n), switch_id((i + 2) % n)]
        for i in range(n)
    ]


class TestWaitForGraph:
    def test_empty_graph_acyclic(self):
        assert not WaitForGraph().has_cycle()

    def test_self_loop_is_cycle(self):
        graph = WaitForGraph()
        graph.add_edge("a", "a")
        assert graph.has_cycle()

    def test_chain_acyclic(self):
        graph = WaitForGraph()
        graph.add_edge("a", "b")
        graph.add_edge("b", "c")
        assert not graph.has_cycle()

    def test_cycle_found_and_reported(self):
        graph = WaitForGraph()
        graph.add_edge("a", "b")
        graph.add_edge("b", "c")
        graph.add_edge("c", "a")
        cycle = graph.find_cycle()
        assert cycle is not None
        assert cycle[0] == cycle[-1]
        assert set(cycle) == {"a", "b", "c"}

    def test_deep_chain_no_recursion_blowup(self):
        graph = WaitForGraph()
        for i in range(5000):
            graph.add_edge(i, i + 1)
        assert not graph.has_cycle()

    def test_counts(self):
        graph = WaitForGraph()
        graph.add_edge("a", "b")
        graph.add_node("c")
        assert graph.n_nodes == 3
        assert graph.n_edges == 1


class TestFifoDeadlock:
    def test_ring_traffic_cycles(self):
        """Circular routes over FIFO links form a waits-for cycle: the
        deadlock AN1 prevents with up*/down* routing."""
        graph = fifo_wait_for_graph(ring_routes(4))
        assert graph.has_cycle()

    def test_tree_routes_acyclic(self):
        routes = [
            [switch_id(0), switch_id(1), switch_id(2)],
            [switch_id(2), switch_id(1), switch_id(0)],
        ]
        assert not fifo_wait_for_graph(routes).has_cycle()

    def test_single_hop_routes_never_cycle(self):
        routes = [[switch_id(0), switch_id(1)]] * 5
        assert not fifo_wait_for_graph(routes).has_cycle()


class TestPerVcSafety:
    def test_ring_traffic_safe_with_per_vc_buffers(self):
        """The same circular routes are acyclic with per-VC buffers:
        "Since the links of a single virtual circuit can not form a cycle,
        deadlock cannot occur."""
        assert not per_vc_wait_for_graph(ring_routes(4)).has_cycle()

    @settings(max_examples=50, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_switches=st.integers(min_value=3, max_value=8),
        n_routes=st.integers(min_value=1, max_value=12),
    )
    def test_arbitrary_simple_routes_always_acyclic(
        self, seed, n_switches, n_routes
    ):
        rng = random.Random(seed)
        routes = []
        for _ in range(n_routes):
            length = rng.randint(2, n_switches)
            nodes = rng.sample(range(n_switches), length)
            routes.append([switch_id(x) for x in nodes])
        assert not per_vc_wait_for_graph(routes).has_cycle()
