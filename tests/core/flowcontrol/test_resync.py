"""Tests for the credit resynchronization protocol."""

import pytest

from repro.core.flowcontrol.credits import DownstreamCredits, UpstreamCredits
from repro.core.flowcontrol.resync import ResyncReply, ResyncRequest, ResyncState


def lose_credits(upstream, downstream, sent, forwarded, lost):
    """Drive a little history: ``sent`` cells, ``forwarded`` freed,
    ``lost`` of those credits never arrive."""
    for _ in range(sent):
        upstream.consume()
    for _ in range(forwarded):
        downstream.receive()
        downstream.free()
    for _ in range(forwarded - lost):
        upstream.credit()


def test_recovery_after_lost_credit():
    upstream = UpstreamCredits(5)
    downstream = DownstreamCredits(5)
    state = ResyncState(7, upstream)
    lose_credits(upstream, downstream, sent=4, forwarded=4, lost=2)
    assert upstream.balance == 3  # two credits lost

    request = state.make_request()
    assert request == ResyncRequest(7, 4)
    reply = ResyncReply(7, request.cells_sent, downstream.buffers_freed)
    recovered = state.apply_reply(reply)
    assert recovered == 2
    assert upstream.balance == 5
    assert state.credits_recovered == 2


def test_stale_reply_discarded():
    """If the upstream sent more cells after the request snapshot, the
    reply must not be applied (it would over-credit)."""
    upstream = UpstreamCredits(5)
    downstream = DownstreamCredits(5)
    state = ResyncState(7, upstream)
    request = state.make_request()
    upstream.consume()  # race: a cell departs after the snapshot
    reply = ResyncReply(7, request.cells_sent, 0)
    assert state.apply_reply(reply) == 0
    assert upstream.balance == 4  # unchanged by the stale reply


def test_noop_when_nothing_lost():
    upstream = UpstreamCredits(3)
    downstream = DownstreamCredits(3)
    state = ResyncState(1, upstream)
    lose_credits(upstream, downstream, sent=2, forwarded=2, lost=0)
    reply = ResyncReply(1, state.make_request().cells_sent, downstream.buffers_freed)
    assert state.apply_reply(reply) == 0
    assert upstream.balance == 3


def test_cells_still_buffered_downstream_counted():
    """Cells sitting in the downstream buffer are not credited back."""
    upstream = UpstreamCredits(4)
    downstream = DownstreamCredits(4)
    state = ResyncState(2, upstream)
    for _ in range(3):
        upstream.consume()
        downstream.receive()
    downstream.free()  # only one forwarded; its credit is lost
    request = state.make_request()
    reply = ResyncReply(2, request.cells_sent, downstream.buffers_freed)
    assert state.apply_reply(reply) == 1
    # 3 sent, 1 freed -> 2 still buffered -> balance = 4 - 2 = 2.
    assert upstream.balance == 2


def test_incoherent_reply_from_old_incarnation_discarded():
    """After a reroute the upstream state is rebuilt fresh, but the
    downstream's cumulative counter still covers the old path.  The
    resulting reply (freed > sent) must be discarded, not crash."""
    upstream = UpstreamCredits(5)
    state = ResyncState(7, upstream)
    for _ in range(3):
        upstream.consume()
    reply = ResyncReply(7, upstream.cells_sent, 60)  # old-path counter
    assert state.apply_reply(reply) == 0
    assert upstream.balance == 2  # untouched
    assert state.incoherent_replies == 1
    assert state.replies_applied == 0


def test_reply_claiming_impossible_in_flight_discarded():
    """freed so far behind sent that in_flight > allocation can only
    mean the downstream counter was reset (other-side restart)."""
    upstream = UpstreamCredits(3)
    state = ResyncState(7, upstream)
    upstream.cells_sent = 40  # long-lived upstream incarnation
    reply = ResyncReply(7, 40, 2)  # in_flight = 38 > allocation
    assert state.apply_reply(reply) == 0
    assert state.incoherent_replies == 1


def test_wrong_vc_rejected():
    state = ResyncState(2, UpstreamCredits(2))
    with pytest.raises(ValueError):
        state.apply_reply(ResyncReply(3, 0, 0))


def test_repeated_resync_idempotent():
    upstream = UpstreamCredits(5)
    downstream = DownstreamCredits(5)
    state = ResyncState(7, upstream)
    lose_credits(upstream, downstream, sent=2, forwarded=2, lost=1)
    for _ in range(3):
        request = state.make_request()
        reply = ResyncReply(7, request.cells_sent, downstream.buffers_freed)
        state.apply_reply(reply)
    assert upstream.balance == 5
    assert state.credits_recovered == 1
