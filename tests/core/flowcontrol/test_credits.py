"""Tests for per-VC credit state machines, including the conservation
invariant under random schedules (hypothesis)."""

from collections import deque

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.flowcontrol.credits import (
    CreditError,
    DownstreamCredits,
    UpstreamCredits,
    conservation_holds,
)


class TestUpstream:
    def test_starts_with_full_allocation(self):
        upstream = UpstreamCredits(5)
        assert upstream.balance == 5
        assert upstream.can_send

    def test_consume_decrements(self):
        upstream = UpstreamCredits(2)
        upstream.consume()
        upstream.consume()
        assert not upstream.can_send
        assert upstream.cells_sent == 2

    def test_send_without_credit_rejected(self):
        upstream = UpstreamCredits(1)
        upstream.consume()
        with pytest.raises(CreditError):
            upstream.consume()

    def test_credit_restores(self):
        upstream = UpstreamCredits(2)
        upstream.consume()
        upstream.credit()
        assert upstream.balance == 2

    def test_duplicate_credit_clamps_and_counts(self):
        # A duplicated (or post-resync stale) credit cell must degrade
        # gracefully: clamp to the allocation, count the excess.
        upstream = UpstreamCredits(2)
        upstream.credit()
        assert upstream.balance == 2
        assert upstream.excess_credits == 1
        upstream.consume()
        upstream.credit(3)
        assert upstream.balance == 2
        assert upstream.excess_credits == 3

    def test_credit_overflow_raises_in_strict_mode(self):
        upstream = UpstreamCredits(2, strict=True)
        with pytest.raises(CreditError):
            upstream.credit()

    def test_stale_credits_corrected_by_resync(self):
        # Inflated balance (clamped duplicates) is restored to the
        # counter-derived exact value by resynchronization.
        upstream = UpstreamCredits(4)
        for _ in range(2):
            upstream.consume()
        upstream.credit(4)  # two real credits + two duplicates, clamped
        assert upstream.balance == 4
        # Downstream actually freed nothing: correct balance is 2.
        assert upstream.resynchronize(downstream_freed_total=0) == 0
        assert upstream.balance == 2
        assert upstream.excess_credits == 4

    def test_strict_resync_never_reduces(self):
        upstream = UpstreamCredits(4, strict=True)
        upstream.consume()
        upstream.credit(1)
        with pytest.raises(CreditError):
            upstream.resynchronize(downstream_freed_total=0)

    def test_invalid_amounts(self):
        with pytest.raises(CreditError):
            UpstreamCredits(0)
        upstream = UpstreamCredits(3)
        upstream.consume()
        with pytest.raises(CreditError):
            upstream.credit(0)

    def test_resynchronize_recovers_lost_credits(self):
        upstream = UpstreamCredits(4)
        for _ in range(3):
            upstream.consume()
        # Downstream forwarded all 3 but 2 credits were lost in transit:
        upstream.credit(1)
        recovered = upstream.resynchronize(downstream_freed_total=3)
        assert recovered == 2
        assert upstream.balance == 4

    def test_resynchronize_noop_when_consistent(self):
        upstream = UpstreamCredits(4)
        upstream.consume()
        assert upstream.resynchronize(downstream_freed_total=0) == 0
        assert upstream.balance == 3

    def test_resynchronize_rejects_impossible_counters(self):
        upstream = UpstreamCredits(4)
        upstream.consume()
        with pytest.raises(CreditError):
            upstream.resynchronize(downstream_freed_total=2)


class TestDownstream:
    def test_receive_and_free(self):
        downstream = DownstreamCredits(2)
        downstream.receive()
        assert downstream.occupied == 1
        downstream.free()
        assert downstream.occupied == 0
        assert downstream.buffers_freed == 1

    def test_overflow_detected(self):
        downstream = DownstreamCredits(1)
        downstream.receive()
        with pytest.raises(CreditError):
            downstream.receive()
        assert downstream.overflows == 1

    def test_free_empty_rejected(self):
        downstream = DownstreamCredits(1)
        with pytest.raises(CreditError):
            downstream.free()


@settings(max_examples=100, deadline=None)
@given(
    allocation=st.integers(min_value=1, max_value=8),
    actions=st.lists(
        st.sampled_from(["send", "deliver", "forward", "return"]),
        max_size=120,
    ),
)
def test_conservation_invariant(allocation, actions):
    """Random interleavings of send / in-flight delivery / downstream
    forwarding / credit return conserve credits exactly, and the receiver
    never overflows (losslessness, section 5)."""
    upstream = UpstreamCredits(allocation)
    downstream = DownstreamCredits(allocation)
    cells_in_flight = deque()
    credits_in_flight = deque()
    for action in actions:
        if action == "send" and upstream.can_send:
            upstream.consume()
            cells_in_flight.append(1)
        elif action == "deliver" and cells_in_flight:
            cells_in_flight.popleft()
            downstream.receive()  # must never raise
        elif action == "forward" and downstream.occupied:
            downstream.free()
            credits_in_flight.append(1)
        elif action == "return" and credits_in_flight:
            credits_in_flight.popleft()
            upstream.credit()
        assert conservation_holds(
            upstream,
            downstream,
            len(cells_in_flight),
            len(credits_in_flight),
        )
        assert downstream.occupied <= allocation
