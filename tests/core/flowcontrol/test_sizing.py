"""Tests for round-trip credit sizing (section 5)."""

import pytest

from repro.constants import CELL_BITS, CELL_BYTES, FAST_LINK_BPS
from repro.core.flowcontrol.sizing import (
    credits_for_link,
    memory_for_link,
    round_trip_cells,
    round_trip_us,
)


def test_round_trip_time_components():
    cell_time = CELL_BITS / FAST_LINK_BPS * 1e6
    assert round_trip_us(1.0) == pytest.approx(2 * (5.0 + cell_time))
    assert round_trip_us(0.0) == pytest.approx(2 * cell_time)


def test_round_trip_cells_at_least_one():
    assert round_trip_cells(0.0) >= 1


def test_longer_links_need_more_credits():
    assert round_trip_cells(10.0) > round_trip_cells(1.0) > round_trip_cells(0.1)


def test_ten_km_link_cell_count():
    """10 km at 622 Mb/s: RTT ~100 us + serialization; ~150 cells."""
    cells = round_trip_cells(10.0)
    assert 140 <= cells <= 160


def test_credits_include_slack():
    assert credits_for_link(1.0, slack_cells=3) == round_trip_cells(1.0) + 3
    with pytest.raises(ValueError):
        credits_for_link(1.0, slack_cells=-1)


def test_memory_estimate_modest():
    """The paper's argument: 1000 VCs x 10 km round-trip of cells "costs
    much less than the opto-electronics" -- about 8 MB here."""
    total = memory_for_link()
    assert total == 1000 * round_trip_cells(10.0) * CELL_BYTES
    assert total < 16 * 1024 * 1024


def test_validation():
    with pytest.raises(ValueError):
        round_trip_us(-1.0)
    with pytest.raises(ValueError):
        memory_for_link(n_circuits=0)
