"""Tests for the FIFO scheduler baseline and the iSLIP ablation."""

import random

import pytest

from repro.core.matching.analysis import is_legal_matching, is_maximal_matching
from repro.core.matching.fifo import FifoScheduler
from repro.core.matching.islip import IslipMatcher


class TestFifo:
    def test_disjoint_heads_all_win(self):
        fifo = FifoScheduler(4, rng=random.Random(0))
        result = fifo.match_heads([1, 2, 3, 0])
        assert result.matching == {0: 1, 1: 2, 2: 3, 3: 0}

    def test_contending_heads_single_winner(self):
        fifo = FifoScheduler(4, rng=random.Random(0))
        result = fifo.match_heads([2, 2, 2, 2])
        assert len(result.matching) == 1
        assert set(result.matching.values()) == {2}

    def test_none_heads_skipped(self):
        fifo = FifoScheduler(4, rng=random.Random(0))
        result = fifo.match_heads([None, 3, None, None])
        assert result.matching == {1: 3}

    def test_pre_matched_respected(self):
        fifo = FifoScheduler(4, rng=random.Random(0))
        result = fifo.match_heads([1, 1, None, None], pre_matched={3: 1})
        assert result.matching == {3: 1}

    def test_shape_validation(self):
        fifo = FifoScheduler(4)
        with pytest.raises(ValueError):
            fifo.match_heads([None])

    def test_winner_distribution_roughly_fair(self):
        fifo = FifoScheduler(2, rng=random.Random(5))
        wins = {0: 0, 1: 0}
        for _ in range(2000):
            result = fifo.match_heads([0, 0])
            wins[next(iter(result.matching))] += 1
        assert 800 < wins[0] < 1200


class TestIslip:
    def test_legal_and_maximal_with_enough_iterations(self):
        islip = IslipMatcher(8, iterations=8)
        rng = random.Random(1)
        for _ in range(50):
            requests = [
                {o for o in range(8) if rng.random() < 0.5} for _ in range(8)
            ]
            result = islip.match(requests)
            assert is_legal_matching(requests, result.matching)
            assert is_maximal_matching(requests, result.matching)

    def test_pointer_rotation_gives_round_robin_service(self):
        """Two inputs contending for one output alternate wins."""
        islip = IslipMatcher(4, iterations=1)
        winners = []
        for _ in range(6):
            result = islip.match([{0}, {0}, set(), set()])
            winners.append(next(iter(result.matching)))
        # After the first grant, the pointer alternates deterministically.
        assert winners[1:] != [winners[0]] * 5
        assert set(winners) == {0, 1}

    def test_desynchronization_reaches_full_throughput(self):
        """Saturated uniform-all requests: after warmup, every slot matches
        all ports (the classic iSLIP desynchronization property)."""
        n = 4
        islip = IslipMatcher(n, iterations=1)
        sizes = []
        for _ in range(50):
            result = islip.match([set(range(n)) for _ in range(n)])
            sizes.append(len(result.matching))
        assert all(size == n for size in sizes[10:])

    def test_pre_matched_respected(self):
        islip = IslipMatcher(4, iterations=2)
        result = islip.match([{1}, {1, 2}, set(), set()], pre_matched={0: 1})
        assert result.matching[0] == 1
        assert result.matching.get(1) == 2

    def test_shape_validation(self):
        islip = IslipMatcher(4)
        with pytest.raises(ValueError):
            islip.match([set()])

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            IslipMatcher(0)
        with pytest.raises(ValueError):
            IslipMatcher(4, iterations=0)

    def test_reset_clears_pointers(self):
        islip = IslipMatcher(4)
        islip.match([{0}, {0}, set(), set()])
        islip.reset()
        assert islip.grant_pointers == [0, 0, 0, 0]
        assert islip.accept_pointers == [0, 0, 0, 0]
