"""Tests for the bitmask fast-path schedulers.

The load-bearing claims, in order:

1. With ``strict_rng=True``, :class:`BitmaskPim` is *bit-identical* to
   the reference :class:`ParallelIterativeMatcher` for a shared seed --
   same matching, same iteration counts -- across N in {4, 16, 32, 64}.
   Since the outputs coincide on every input, the bitmask matchings are
   legal and maximal exactly when the reference's are.
2. :class:`BitmaskIslip` is exactly equivalent to the reference
   :class:`IslipMatcher` (no randomness involved), including pointer
   state evolution.
3. The default fast RNG protocol still yields legal matchings that are
   maximal whenever claimed, is deterministic for a fixed seed, and
   serves competing flows indistinguishably from the reference (the E11
   starvation pattern).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.matching.analysis import (
    is_legal_matching,
    is_maximal_matching,
)
from repro.core.matching.bitmask import (
    BitmaskFifoScheduler,
    BitmaskIslip,
    BitmaskPim,
    bits_of,
    iter_bits,
    mask_of,
)
from repro.core.matching.fifo import FifoScheduler
from repro.core.matching.islip import IslipMatcher
from repro.core.matching.pim import ParallelIterativeMatcher

EQUIVALENCE_PORTS = [4, 16, 32, 64]


def random_requests(n, density, rng):
    return [
        {o for o in range(n) if rng.random() < density} for _ in range(n)
    ]


def as_masks(requests):
    return [mask_of(wanted) for wanted in requests]


class TestBitHelpers:
    def test_mask_of_bits_of_roundtrip(self):
        for ports in ([], [0], [3, 1, 7], [0, 15], [16, 31, 63]):
            mask = mask_of(ports)
            assert bits_of(mask) == tuple(sorted(ports))
            assert list(iter_bits(mask)) == sorted(ports)

    def test_bits_of_wide_masks(self):
        rng = random.Random(0)
        for _ in range(200):
            ports = sorted(rng.sample(range(64), rng.randrange(0, 20)))
            assert bits_of(mask_of(ports)) == tuple(ports)

    def test_bits_ascending(self):
        # The ascending order is the determinism contract shared with the
        # reference matchers' sorted() calls.
        assert bits_of(0b1011_0001) == (0, 4, 5, 7)


class TestStrictPimEquivalence:
    """Bit-identical to the reference for a shared seed."""

    @pytest.mark.parametrize("n", EQUIVALENCE_PORTS)
    def test_identical_across_densities(self, n):
        gen = random.Random(100 + n)
        reference = ParallelIterativeMatcher(n, 3, rng=random.Random(7))
        bitmask = BitmaskPim(n, 3, rng=random.Random(7), strict_rng=True)
        for trial in range(120):
            density = (trial % 10 + 1) / 10
            requests = random_requests(n, density, gen)
            expected = reference.match(requests)
            actual = bitmask.match(requests)
            assert actual.matching == expected.matching
            assert actual.iterations_run == expected.iterations_run
            assert (
                actual.iterations_to_maximal == expected.iterations_to_maximal
            )
            assert (
                actual.new_matches_per_iteration
                == expected.new_matches_per_iteration
            )
            # Identical outputs => legal/maximal exactly when the
            # reference's are; assert the analysis agrees on both.
            assert is_legal_matching(requests, actual.matching)
            assert is_maximal_matching(
                requests, actual.matching
            ) == is_maximal_matching(requests, expected.matching)

    @pytest.mark.parametrize("n", [4, 16])
    def test_identical_with_pre_matched(self, n):
        gen = random.Random(5)
        reference = ParallelIterativeMatcher(n, 3, rng=random.Random(3))
        bitmask = BitmaskPim(n, 3, rng=random.Random(3), strict_rng=True)
        for _ in range(100):
            requests = random_requests(n, 0.5, gen)
            pre = {0: 1, n - 1: 0}
            requests[0] = set()
            requests[n - 1] = set()
            for wanted in requests:
                wanted.discard(1)
                wanted.discard(0)
            assert (
                bitmask.match(requests, pre_matched=pre).matching
                == reference.match(requests, pre_matched=pre).matching
            )

    @pytest.mark.parametrize("iterations", [1, 2, 5])
    def test_identical_across_iteration_counts(self, iterations):
        gen = random.Random(8)
        n = 16
        reference = ParallelIterativeMatcher(
            n, iterations, rng=random.Random(11)
        )
        bitmask = BitmaskPim(
            n, iterations, rng=random.Random(11), strict_rng=True
        )
        for _ in range(100):
            requests = random_requests(n, 0.6, gen)
            assert (
                bitmask.match(requests).matching
                == reference.match(requests).matching
            )

    def test_mask_and_set_inputs_agree(self):
        gen = random.Random(2)
        n = 16
        requests = random_requests(n, 0.5, gen)
        a = BitmaskPim(n, rng=random.Random(1)).match(requests)
        b = BitmaskPim(n, rng=random.Random(1)).match(as_masks(requests))
        assert a.matching == b.matching

    def test_explicit_union_agrees(self):
        gen = random.Random(3)
        n = 16
        requests = random_requests(n, 0.5, gen)
        masks = as_masks(requests)
        union = 0
        for mask in masks:
            union |= mask
        a = BitmaskPim(n, rng=random.Random(1)).match_masks(masks)
        b = BitmaskPim(n, rng=random.Random(1)).match_masks(
            masks, union=union
        )
        assert a.matching == b.matching


class TestIslipEquivalence:
    @pytest.mark.parametrize("n", EQUIVALENCE_PORTS)
    def test_identical_including_pointer_state(self, n):
        gen = random.Random(50 + n)
        reference = IslipMatcher(n, 3)
        bitmask = BitmaskIslip(n, 3)
        for _ in range(120):
            requests = random_requests(n, 0.5, gen)
            expected = reference.match(requests)
            actual = bitmask.match(requests)
            assert actual.matching == expected.matching
            assert bitmask.grant_pointers == reference.grant_pointers
            assert bitmask.accept_pointers == reference.accept_pointers

    def test_reset_clears_pointers(self):
        bitmask = BitmaskIslip(4)
        bitmask.match([{1}, {2}, {3}, {0}])
        bitmask.reset()
        assert bitmask.grant_pointers == [0, 0, 0, 0]
        assert bitmask.accept_pointers == [0, 0, 0, 0]


class TestFifoEquivalence:
    @pytest.mark.parametrize("n", [4, 16])
    def test_strict_identical(self, n):
        gen = random.Random(21)
        reference = FifoScheduler(n, rng=random.Random(9))
        bitmask = BitmaskFifoScheduler(
            n, rng=random.Random(9), strict_rng=True
        )
        for _ in range(200):
            heads = [
                gen.randrange(n) if gen.random() < 0.7 else None
                for _ in range(n)
            ]
            assert (
                bitmask.match_heads(heads).matching
                == reference.match_heads(heads).matching
            )


class TestValidation:
    def test_rejects_oversized_radix(self):
        with pytest.raises(ValueError):
            BitmaskPim(65)
        with pytest.raises(ValueError):
            BitmaskIslip(65)

    def test_rejects_bad_mask(self):
        pim = BitmaskPim(4)
        with pytest.raises(ValueError):
            pim.match([0b10000, 0, 0, 0])  # bit 4 out of range
        with pytest.raises(ValueError):
            pim.match([-1, 0, 0, 0])

    def test_rejects_bad_set(self):
        pim = BitmaskPim(4)
        with pytest.raises(ValueError):
            pim.match([{9}, set(), set(), set()])
        with pytest.raises(ValueError):
            pim.match([set()])

    def test_rejects_conflicting_pre_match(self):
        pim = BitmaskPim(4)
        with pytest.raises(ValueError):
            pim.match([set()] * 4, pre_matched={0: 1, 2: 1})

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            BitmaskPim(0)
        with pytest.raises(ValueError):
            BitmaskPim(4, iterations=0)


def requests_strategy(max_ports=8):
    return st.integers(min_value=2, max_value=max_ports).flatmap(
        lambda n: st.lists(
            st.sets(st.integers(min_value=0, max_value=n - 1), max_size=n),
            min_size=n,
            max_size=n,
        )
    )


@settings(max_examples=100, deadline=None)
@given(requests=requests_strategy())
def test_fast_mode_matching_always_legal(requests):
    n = len(requests)
    pim = BitmaskPim(n, iterations=3, rng=random.Random(0))
    result = pim.match(requests)
    assert is_legal_matching(requests, result.matching)


@settings(max_examples=100, deadline=None)
@given(requests=requests_strategy())
def test_fast_mode_maximal_when_claimed(requests):
    n = len(requests)
    pim = BitmaskPim(n, iterations=4 * n, rng=random.Random(1))
    result = pim.match(requests)
    assert result.iterations_to_maximal is not None
    assert is_maximal_matching(requests, result.matching)


@settings(max_examples=100, deadline=None)
@given(requests=requests_strategy())
def test_islip_fast_mode_legal_and_maximal_with_reference(requests):
    """iSLIP bitmask vs reference on arbitrary hypothesis inputs."""
    n = len(requests)
    expected = IslipMatcher(n, 3).match(requests)
    actual = BitmaskIslip(n, 3).match(requests)
    assert actual.matching == expected.matching


class TestFastModeDeterminism:
    def test_fixed_seed_bit_identical_across_repeats(self):
        """Satellite: fixed-seed fast-mode runs repeat bit-for-bit."""
        n = 16

        def run():
            gen = random.Random(77)
            pim = BitmaskPim(n, rng=random.Random(13))
            outcomes = []
            for _ in range(200):
                requests = random_requests(n, 0.5, gen)
                result = pim.match(requests)
                outcomes.append(
                    (result.matching, tuple(result.new_matches_per_iteration))
                )
            return outcomes

        assert run() == run()

    def test_strict_seed_bit_identical_across_repeats(self):
        n = 16

        def run():
            gen = random.Random(78)
            pim = BitmaskPim(n, rng=random.Random(14), strict_rng=True)
            return [
                tuple(sorted(pim.match(random_requests(n, 0.5, gen)).matching.items()))
                for _ in range(200)
            ]

        assert run() == run()


class TestFastModeDistribution:
    def test_e11_starvation_pattern_service_counts(self):
        """Fast-RNG service shares match the reference within tolerance.

        The E11 starvation pattern: flows (1, 2), (1, 3), (4, 3) compete
        pairwise (shared input 1, shared output 3).  PIM's randomized
        grants must serve all three; the fast draw protocol must produce
        the same service shares as the reference ``randrange`` protocol.
        """
        n = 16
        flows = [(1, 2), (1, 3), (4, 3)]
        slots = 4000

        def service_counts(matcher):
            requests = [set() for _ in range(n)]
            for i, o in flows:
                requests[i].add(o)
            counts = {flow: 0 for flow in flows}
            for _ in range(slots):
                result = matcher.match(requests)
                for flow in flows:
                    if result.matching.get(flow[0]) == flow[1]:
                        counts[flow] += 1
            return counts

        reference = service_counts(
            ParallelIterativeMatcher(n, rng=random.Random(5))
        )
        fast = service_counts(BitmaskPim(n, rng=random.Random(5)))
        for flow in flows:
            # Every flow gets sustained service under both protocols...
            assert reference[flow] > slots * 0.2
            assert fast[flow] > slots * 0.2
            # ...and the shares agree within 5% of the slot budget.
            assert abs(reference[flow] - fast[flow]) < slots * 0.05

    def test_uniform_grant_shares(self):
        """A single contested output grants ~uniformly among contenders."""
        n = 8
        requests = [{0} for _ in range(n)]
        pim = BitmaskPim(n, iterations=1, rng=random.Random(3))
        wins = [0] * n
        trials = 4000
        for _ in range(trials):
            result = pim.match(requests)
            [(winner, _)] = result.matching.items()
            wins[winner] += 1
        expected = trials / n
        for count in wins:
            assert abs(count - expected) < expected * 0.35
