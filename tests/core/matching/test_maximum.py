"""Tests for Hopcroft-Karp maximum matching."""

import itertools
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.matching.analysis import is_legal_matching
from repro.core.matching.maximum import MaximumMatcher, hopcroft_karp


def brute_force_maximum(n, requests):
    """Exact maximum by trying all injective assignments (tiny n only)."""
    best = 0
    inputs = [i for i in range(n) if requests[i]]
    for size in range(len(inputs), 0, -1):
        for subset in itertools.combinations(inputs, size):
            for outputs in itertools.permutations(range(n), size):
                if all(
                    o in requests[i] for i, o in zip(subset, outputs)
                ):
                    return size
    return best


def test_empty():
    assert hopcroft_karp(4, [set()] * 4) == {}


def test_perfect_permutation():
    matching = hopcroft_karp(4, [{1}, {2}, {3}, {0}])
    assert matching == {0: 1, 1: 2, 2: 3, 3: 0}


def test_augmenting_path_needed():
    # input0 -> {0,1}, input1 -> {0}: greedy 0->0 must be augmented.
    matching = hopcroft_karp(2, [{0, 1}, {0}])
    assert len(matching) == 2
    assert matching[1] == 0


def test_paper_starvation_pattern_unique_maximum():
    """Input 1 wants outputs 2 and 3; input 4 wants output 3: the unique
    maximum pairs 1->2 and 4->3 every time (section 3's example)."""
    requests = [set() for _ in range(16)]
    requests[1] = {2, 3}
    requests[4] = {3}
    matching = hopcroft_karp(16, requests)
    assert matching == {1: 2, 4: 3}


def test_matcher_facade_with_pre_matched():
    matcher = MaximumMatcher(4)
    result = matcher.match([{1, 2}, {2}, set(), set()], pre_matched={3: 2})
    assert result.matching[3] == 2
    assert result.matching[0] == 1
    assert is_legal_matching(
        [{1, 2}, {2}, set(), {2}], {k: v for k, v in result.matching.items() if k != 3}
    )


@settings(max_examples=60, deadline=None)
@given(
    requests=st.lists(
        st.sets(st.integers(min_value=0, max_value=4), max_size=5),
        min_size=5,
        max_size=5,
    )
)
def test_matches_brute_force_size(requests):
    matching = hopcroft_karp(5, requests)
    assert is_legal_matching(requests, matching)
    assert len(matching) == brute_force_maximum(5, requests)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=10),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_legal_on_random_graphs(n, seed):
    rng = random.Random(seed)
    requests = [
        {o for o in range(n) if rng.random() < 0.4} for _ in range(n)
    ]
    matching = hopcroft_karp(n, requests)
    assert is_legal_matching(requests, matching)
