"""Tests for parallel iterative matching."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import pim_iteration_bound
from repro.core.matching.analysis import (
    is_legal_matching,
    is_maximal_matching,
    maximum_size,
)
from repro.core.matching.pim import ParallelIterativeMatcher


def requests_strategy(max_ports=8):
    return st.integers(min_value=2, max_value=max_ports).flatmap(
        lambda n: st.lists(
            st.sets(st.integers(min_value=0, max_value=n - 1), max_size=n),
            min_size=n,
            max_size=n,
        )
    )


class TestBasics:
    def test_empty_requests_empty_match(self):
        pim = ParallelIterativeMatcher(4, rng=random.Random(0))
        result = pim.match([set(), set(), set(), set()])
        assert result.matching == {}
        assert result.iterations_to_maximal == 1

    def test_single_request_matched_first_iteration(self):
        pim = ParallelIterativeMatcher(4, rng=random.Random(0))
        result = pim.match([{2}, set(), set(), set()])
        assert result.matching == {0: 2}
        assert result.iterations_to_maximal == 1

    def test_permutation_fully_matched(self):
        pim = ParallelIterativeMatcher(4, rng=random.Random(0))
        result = pim.match([{1}, {2}, {3}, {0}])
        assert result.matching == {0: 1, 1: 2, 2: 3, 3: 0}

    def test_conflicting_requests_one_winner(self):
        pim = ParallelIterativeMatcher(4, rng=random.Random(0))
        result = pim.match([{0}, {0}, {0}, {0}])
        assert len(result.matching) == 1
        assert set(result.matching.values()) == {0}

    def test_validation_of_request_shape(self):
        pim = ParallelIterativeMatcher(4)
        with pytest.raises(ValueError):
            pim.match([set()])
        with pytest.raises(ValueError):
            pim.match([{9}, set(), set(), set()])

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ParallelIterativeMatcher(0)
        with pytest.raises(ValueError):
            ParallelIterativeMatcher(4, iterations=0)

    def test_deterministic_for_fixed_seed(self):
        requests = [{0, 1, 2}, {1, 2}, {2, 3}, {0, 3}]
        a = ParallelIterativeMatcher(4, rng=random.Random(9)).match(requests)
        b = ParallelIterativeMatcher(4, rng=random.Random(9)).match(requests)
        assert a.matching == b.matching


class TestPreMatched:
    def test_pre_matched_pairs_preserved(self):
        pim = ParallelIterativeMatcher(4, rng=random.Random(0))
        result = pim.match([set(), {0, 2}, set(), {2}], pre_matched={0: 1})
        assert result.matching[0] == 1

    def test_pre_matched_output_not_reused(self):
        pim = ParallelIterativeMatcher(4, rng=random.Random(0))
        # input 1 requests only output 1, which is pre-matched to input 0.
        result = pim.match([set(), {1}, set(), set()], pre_matched={0: 1})
        assert result.matching == {0: 1}

    def test_pre_matched_input_not_rematched(self):
        pim = ParallelIterativeMatcher(4, rng=random.Random(0))
        result = pim.match([{2}, set(), set(), set()], pre_matched={0: 1})
        assert result.matching == {0: 1}

    def test_conflicting_pre_match_rejected(self):
        pim = ParallelIterativeMatcher(4)
        with pytest.raises(ValueError):
            pim.match([set()] * 4, pre_matched={0: 1, 2: 1})


class TestIterationBehaviour:
    def test_iteration_fills_gaps(self):
        # A pattern where one iteration can leave gaps: all inputs want
        # everything, so grants collide; more iterations must fill in.
        requests = [set(range(8)) for _ in range(8)]
        pim = ParallelIterativeMatcher(8, iterations=8, rng=random.Random(1))
        result = pim.match(requests)
        assert len(result.matching) == 8  # perfect match guaranteed

    def test_new_matches_non_increasing_need(self):
        requests = [set(range(8)) for _ in range(8)]
        pim = ParallelIterativeMatcher(8, iterations=8, rng=random.Random(1))
        result = pim.match(requests)
        assert sum(result.new_matches_per_iteration) == len(result.matching)

    def test_average_iterations_below_log_bound(self):
        """E2 (unit-scale): mean iterations to maximal <= log2(N) + 4/3."""
        n = 16
        pim = ParallelIterativeMatcher(n, iterations=n, rng=random.Random(3))
        rng = random.Random(4)
        total, count = 0, 0
        for _ in range(300):
            requests = [
                {o for o in range(n) if rng.random() < 0.5} for _ in range(n)
            ]
            result = pim.match(requests)
            assert result.iterations_to_maximal is not None
            total += result.iterations_to_maximal
            count += 1
        assert total / count <= pim_iteration_bound(n)


@settings(max_examples=100, deadline=None)
@given(requests=requests_strategy())
def test_matching_always_legal(requests):
    n = len(requests)
    pim = ParallelIterativeMatcher(n, iterations=3, rng=random.Random(0))
    result = pim.match(requests)
    assert is_legal_matching(requests, result.matching)


@settings(max_examples=100, deadline=None)
@given(requests=requests_strategy())
def test_enough_iterations_reach_maximal(requests):
    n = len(requests)
    pim = ParallelIterativeMatcher(n, iterations=4 * n, rng=random.Random(1))
    result = pim.match(requests)
    assert is_maximal_matching(requests, result.matching)
    assert result.iterations_to_maximal is not None


@settings(max_examples=50, deadline=None)
@given(requests=requests_strategy(max_ports=6))
def test_maximal_at_least_half_of_maximum(requests):
    """Any maximal matching is >= half the maximum matching size."""
    n = len(requests)
    pim = ParallelIterativeMatcher(n, iterations=4 * n, rng=random.Random(2))
    result = pim.match(requests)
    assert 2 * len(result.matching) >= maximum_size(requests)
