"""Tests for matching analysis helpers."""

from repro.core.matching.analysis import (
    greedy_completion,
    is_legal_matching,
    is_maximal_matching,
    match_size,
    maximum_size,
)


def test_legal_checks_requested_edges():
    requests = [{1}, {0}]
    assert is_legal_matching(requests, {0: 1, 1: 0})
    assert not is_legal_matching(requests, {0: 0})  # unrequested edge


def test_legal_rejects_shared_output():
    requests = [{0}, {0}]
    assert not is_legal_matching(requests, {0: 0, 1: 0})


def test_legal_rejects_bad_input_index():
    assert not is_legal_matching([{0}], {5: 0})


def test_maximal_detection():
    requests = [{0, 1}, {1}]
    assert is_maximal_matching(requests, {0: 0, 1: 1})
    # {0:1} blocks input 1's only output, so nothing can be added: maximal
    # (though smaller than the maximum) -- exactly maximal vs maximum.
    assert is_maximal_matching(requests, {0: 1})
    assert not is_maximal_matching(requests, {})
    assert not is_maximal_matching(requests, {1: 1})  # input 0 could take 0


def test_greedy_completion_is_maximal():
    requests = [{0, 1, 2}, {1, 2}, {2}]
    completed = greedy_completion(requests, {})
    assert is_maximal_matching(requests, completed)
    assert is_legal_matching(requests, completed)


def test_greedy_completion_preserves_existing():
    requests = [{0, 1}, {0}]
    completed = greedy_completion(requests, {0: 1})
    assert completed[0] == 1
    assert completed[1] == 0


def test_maximum_size_and_match_size():
    requests = [{0, 1}, {0}]
    assert maximum_size(requests) == 2
    assert match_size({0: 1}) == 1
