"""Test package."""
