"""Test package."""
