"""Tests for the guaranteed-traffic bounds (section 4 formulas)."""

import pytest

from repro.constants import FAST_CELL_TIME_US, FRAME_SLOTS
from repro.core.guaranteed.latency import (
    buffer_requirement_cells,
    frame_time_us,
    guaranteed_latency_bound_us,
    per_switch_jitter_bound_us,
)


def test_frame_time_near_half_millisecond():
    """"With 1 gigabit-per-second links, it takes less than half a
    millisecond to transmit a frame" -- at 622 Mb/s ours is ~0.7 ms, and
    at 1 Gb/s the paper's statement holds."""
    gbit_cell_time = 53 * 8 / 1e9 * 1e6
    assert frame_time_us(FRAME_SLOTS, gbit_cell_time) < 500.0
    assert frame_time_us() == pytest.approx(FRAME_SLOTS * FAST_CELL_TIME_US)


def test_latency_bound_formula():
    assert guaranteed_latency_bound_us(3, 100.0, 7.0) == pytest.approx(
        3 * (200.0 + 7.0)
    )
    assert guaranteed_latency_bound_us(0, 100.0, 7.0) == 0.0


def test_latency_bound_validation():
    with pytest.raises(ValueError):
        guaranteed_latency_bound_us(-1, 100.0, 0.0)
    with pytest.raises(ValueError):
        frame_time_us(0)


def test_per_switch_jitter_below_one_millisecond():
    """Section 4: latency and jitter "less than 1 millisecond per switch"
    for sub-half-millisecond frames."""
    gbit_cell_time = 53 * 8 / 1e9 * 1e6
    f = frame_time_us(FRAME_SLOTS, gbit_cell_time)
    assert per_switch_jitter_bound_us(f) < 1000.0


def test_buffer_requirements():
    assert buffer_requirement_cells(1024, synchronous=True) == 2048
    assert buffer_requirement_cells(1024, synchronous=False) == 4096
    with pytest.raises(ValueError):
        buffer_requirement_cells(0)
