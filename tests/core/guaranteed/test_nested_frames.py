"""Tests for the nested-frame extension (section 4)."""

import random

import pytest

from repro.core.guaranteed.frames import FrameSchedule, ScheduleError
from repro.core.guaranteed.nested_frames import NestedFrameSchedule
from repro.core.guaranteed.slepian_duguid import insert_reservation


def test_shares_split_evenly():
    nested = NestedFrameSchedule(4, frame_slots=64, subframe_slots=8)
    assert nested._shares(8) == [1] * 8
    assert nested._shares(10) == [2, 2, 1, 1, 1, 1, 1, 1]
    assert nested._shares(3) == [1, 1, 1, 0, 0, 0, 0, 0]


def test_reserve_and_release_roundtrip():
    nested = NestedFrameSchedule(4, frame_slots=64, subframe_slots=8)
    nested.reserve(0, 1, 10)
    nested.check_consistent()
    assert nested.total_reserved() == 10
    nested.release(0, 1, 10)
    assert nested.total_reserved() == 0
    nested.check_consistent()


def test_release_more_than_reserved_rejected():
    nested = NestedFrameSchedule(4, frame_slots=64, subframe_slots=8)
    nested.reserve(0, 1, 4)
    with pytest.raises(ScheduleError):
        nested.release(0, 1, 5)


def test_subframe_must_divide_frame():
    with pytest.raises(ValueError):
        NestedFrameSchedule(4, frame_slots=100, subframe_slots=7)


def test_slot_assignments_delegate_to_subframes():
    nested = NestedFrameSchedule(4, frame_slots=16, subframe_slots=4)
    nested.reserve(2, 3, 4)  # one per subframe
    served = [
        slot
        for slot in range(16)
        if nested.slot_assignments(slot).get(2) == 3
    ]
    assert len(served) == 4
    # One service in each 4-slot subframe.
    assert sorted(slot // 4 for slot in served) == [0, 1, 2, 3]


def test_jitter_gap_improves_on_flat_frame():
    """The extension's selling point: the worst service gap shrinks from
    ~frame to ~subframe for multi-cell reservations."""
    nested = NestedFrameSchedule(4, frame_slots=64, subframe_slots=8)
    nested.reserve(0, 1, 8)
    assert nested.max_gap_slots(0, 1) <= 2 * 8  # about a subframe

    flat = FrameSchedule(4, 64)
    insert_reservation(flat, 0, 1, 8)
    # Slepian-Duguid packs the flat frame's cells into the first slots,
    # leaving a worst-case gap of nearly the whole frame.
    slots = [
        s for s in range(64) if flat.output_of(s, 0) == 1
    ]
    gaps = [b - a for a, b in zip(slots, slots[1:])]
    gaps.append(64 - slots[-1] + slots[0])
    assert max(gaps) > 2 * 8


def test_admits_accounts_for_subframe_capacity():
    nested = NestedFrameSchedule(2, frame_slots=8, subframe_slots=2)
    nested.reserve(0, 0, 8)  # input 0 completely full
    assert not nested.admits(0, 1, 1)
    assert nested.admits(1, 1, 8)


def test_block_full_load_admissible():
    """Full load made of large per-pair reservations splits evenly into
    the subframes and schedules completely."""
    n, frame, sub = 4, 32, 8
    nested = NestedFrameSchedule(n, frame_slots=frame, subframe_slots=sub)
    # A permutation matrix scaled to the full frame: 4 reservations of 32.
    for i in range(n):
        nested.reserve(i, (i + 1) % n, frame)
    nested.check_consistent()
    assert nested.total_reserved() == frame * n


def test_fragmented_full_load_can_be_inadmissible():
    """The cost of nesting: many small reservations round up to one slot
    per subframe each, so a row of tiny reservations can exhaust a
    subframe even though the flat frame would admit it.  ``admits`` must
    detect this rather than corrupt the schedule."""
    n, frame, sub = 8, 64, 8
    nested = NestedFrameSchedule(n, frame_slots=frame, subframe_slots=sub)
    # 8 reservations of 9 cells each from input 0: flat row sum 72 > 64
    # would be inadmissible anyway, so use 8 x 8 = 64 (flat-admissible).
    # Each 8-cell reservation takes exactly one slot per subframe: 8 VCs
    # x 1 slot = 8 slots per subframe -- exactly full, still admissible.
    for o in range(8):
        assert nested.admits(0, o, 8)
        nested.reserve(0, o, 8)
    nested.check_consistent()
    # But a 9-cell reservation (ceil 9/8 = 2 in some subframe) from a
    # fresh input to a fresh... all outputs loaded; verify admits says no
    # without corrupting state.
    assert not nested.admits(0, 0, 1)
    before = nested.total_reserved()
    with pytest.raises(ScheduleError):
        nested.reserve(0, 0, 1)
    assert nested.total_reserved() == before
    nested.check_consistent()


def test_max_gap_requires_reservation():
    nested = NestedFrameSchedule(4, frame_slots=16, subframe_slots=4)
    with pytest.raises(ScheduleError):
        nested.max_gap_slots(0, 1)


def test_reserve_validation():
    nested = NestedFrameSchedule(4, frame_slots=16, subframe_slots=4)
    with pytest.raises(ValueError):
        nested.reserve(0, 1, 0)
    nested.reserve(0, 1, 16)
    with pytest.raises(ScheduleError):
        nested.reserve(0, 2, 1)
