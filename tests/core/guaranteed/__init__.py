"""Test package."""
