"""Stateful property testing of the frame schedule.

A hypothesis rule-based machine drives arbitrary interleavings of
Slepian-Duguid insertions and removals against a FrameSchedule, checking
the crossbar invariants and a model of the reservation matrix after
every step.  This is the "program verification" spirit the paper credits
for finding flaws in early reconfiguration versions, applied to the
scheduling layer.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.core.guaranteed.frames import FrameSchedule
from repro.core.guaranteed.slepian_duguid import insert_cell, remove_cell

N_PORTS = 4
N_SLOTS = 6


class ScheduleMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.schedule = FrameSchedule(N_PORTS, N_SLOTS)
        self.model = [[0] * N_PORTS for _ in range(N_PORTS)]

    # ------------------------------------------------------------------
    @rule(
        i=st.integers(min_value=0, max_value=N_PORTS - 1),
        o=st.integers(min_value=0, max_value=N_PORTS - 1),
    )
    def insert(self, i, o):
        row = sum(self.model[i])
        col = sum(self.model[x][o] for x in range(N_PORTS))
        if row < N_SLOTS and col < N_SLOTS:
            trace = insert_cell(self.schedule, i, o)
            assert trace.steps <= N_PORTS + 1
            self.model[i][o] += 1
        else:
            assert not self.schedule.admits(i, o)

    @rule(
        i=st.integers(min_value=0, max_value=N_PORTS - 1),
        o=st.integers(min_value=0, max_value=N_PORTS - 1),
    )
    def remove(self, i, o):
        if self.model[i][o] > 0:
            slot = remove_cell(self.schedule, i, o)
            assert 0 <= slot < N_SLOTS
            self.model[i][o] -= 1

    # ------------------------------------------------------------------
    @invariant()
    def crossbar_constraints_hold(self):
        if not hasattr(self, "schedule"):
            return
        self.schedule.check_consistent()

    @invariant()
    def matrix_matches_model(self):
        if not hasattr(self, "schedule"):
            return
        assert self.schedule.reservation_matrix() == self.model

    @invariant()
    def totals_match(self):
        if not hasattr(self, "schedule"):
            return
        for i in range(N_PORTS):
            assert self.schedule.input_load(i) == sum(self.model[i])


TestScheduleMachine = ScheduleMachine.TestCase
TestScheduleMachine.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None
)
