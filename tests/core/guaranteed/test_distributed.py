"""Tests for the distributed bandwidth admission protocol."""

import pytest

from repro._types import host_id, switch_id
from repro.core.routing.circuits import CircuitState
from repro.net.network import Network
from repro.net.topology import Topology
from tests.conftest import fast_host_config, fast_switch_config


@pytest.fixture
def net(small_net):
    return small_net


class TestGrantPath:
    def test_grant_installs_schedule_and_circuit(self, net):
        circuit, outcome = net.reserve_bandwidth_distributed("h0", "h1", 8)
        assert outcome == "granted"
        assert circuit.state is CircuitState.ESTABLISHED
        for sid in ("s0", "s1", "s2"):
            switch = net.switch(sid)
            assert switch.frame_schedule.total_reserved() == 8
            assert circuit.vc in switch._vc_in_port
        assert circuit.vc in net.host("h1").incoming_circuits

    def test_granted_circuit_carries_cbr_traffic(self, net):
        circuit, outcome = net.reserve_bandwidth_distributed("h0", "h1", 4)
        assert outcome == "granted"
        net.host("h0").send_raw_cells(circuit.vc, 30)
        net.run(300_000)
        assert net.host("h1").cells_received == 30

    def test_ledger_decrements_per_grant(self, net):
        s1 = net.switch("s1")
        before = {p: s1.admission.residual(p) for p in range(s1.n_ports)}
        circuit, _ = net.reserve_bandwidth_distributed("h0", "h1", 8)
        in_port = s1._vc_in_port[circuit.vc]
        out_port = s1.cards[in_port].routing_table.lookup(circuit.vc).out_port
        assert s1.admission.residual(out_port) == before[out_port] - 8


class TestRejection:
    def test_overload_rejected_with_rollback(self, net):
        a, outcome_a = net.reserve_bandwidth_distributed("h0", "h1", 20)
        assert outcome_a == "granted"
        b, outcome_b = net.reserve_bandwidth_distributed("h0", "h1", 20)
        assert outcome_b.startswith("rejected")
        assert b.state is CircuitState.TORN_DOWN
        # Rollback left only the first reservation's state behind.
        for sid in ("s0", "s1", "s2"):
            switch = net.switch(sid)
            assert switch.frame_schedule.total_reserved() == 20
            assert b.vc not in switch._vc_in_port
            assert switch.admission.held_cells() == 20

    def test_rejection_reason_surfaces(self, net):
        net.reserve_bandwidth_distributed("h0", "h1", 30)
        _, outcome = net.reserve_bandwidth_distributed("h0", "h1", 30)
        assert "link full" in outcome

    def test_unroutable_destination_rejected(self, net):
        circuit, outcome = net.reserve_bandwidth_distributed(
            "h0", "h1", 8
        )
        assert outcome == "granted"
        # A request toward a host that exists nowhere is rejected at the
        # first switch.
        from repro.core.guaranteed.distributed import ReserveRequest
        from repro.net.cell import Cell, CellKind, TrafficClass

        host = net.host("h0")
        vc = net.vc_allocator.allocate()
        host.open_circuit(
            vc, host_id(42),
            traffic_class=TrafficClass.GUARANTEED,
            cells_per_frame=1, send_setup=False,
        )
        host.active_port.send(
            Cell(vc=1, kind=CellKind.SIGNALING, payload=ReserveRequest(
                vc=vc, source=host_id(0), destination=host_id(42),
                cells_per_frame=1,
            ))
        )
        net.run_until(
            lambda: vc in host.reservation_outcomes, timeout_us=100_000
        )
        assert host.reservation_outcomes[vc].startswith("rejected")


class TestLocalKnowledgeLimit:
    def test_greedy_hop_choice_can_reject_what_central_admits(self):
        """The documented fidelity gap: on a diamond whose preferred arm
        is full, hop-by-hop admission (which cannot re-route around a
        full *remote* link) may reject while the centralized service
        finds the other arm."""
        topo = Topology()
        for i in range(4):
            topo.add_switch(i)
        topo.connect("s0", "s1")
        topo.connect("s1", "s3")
        topo.connect("s0", "s2")
        topo.connect("s2", "s3")
        topo.add_host(0)
        topo.add_host(1)
        topo.connect("h0", "s0", port_a=0, bps=622_000_000)
        topo.connect("h1", "s3", port_a=0, bps=622_000_000)
        net = Network(
            topo,
            seed=91,
            switch_config=fast_switch_config(),
            host_config=fast_host_config(),
        )
        net.start()
        net.run_until_converged(timeout_us=500_000)

        # Saturate one arm via distributed grants until a rejection.
        granted, rejected = 0, 0
        for _ in range(8):
            _, outcome = net.reserve_bandwidth_distributed("h0", "h1", 8)
            if outcome == "granted":
                granted += 1
            else:
                rejected += 1
        # The 32-slot frame admits 4 x 8 on a single arm; hop-by-hop
        # admission sticks to one next-hop choice, so at most the host
        # link's capacity minus... the first arm fills after 4 grants.
        assert granted >= 4
        # Centralized admission over the same residual state would have
        # found the second arm; distributed may or may not, depending on
        # the deterministic next-hop choice.  What must NEVER happen is
        # an over-commitment:
        for switch in net.switches.values():
            for port in range(switch.n_ports):
                assert switch.admission.residual(port) >= 0
