"""Tests for Slepian-Duguid insertion, including the Figure 3 trace."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.guaranteed.frames import (
    FrameSchedule,
    ScheduleError,
    figure2_schedule,
    figure3_initial_schedule,
)
from repro.core.guaranteed.slepian_duguid import (
    build_schedule,
    insert_cell,
    insert_reservation,
    remove_cell,
)


def random_admissible_matrix(n, slots, rng, density=200):
    matrix = [[0] * n for _ in range(n)]
    rows, cols = [0] * n, [0] * n
    for _ in range(density):
        i, o = rng.randrange(n), rng.randrange(n)
        k = min(rng.randint(1, 3), slots - rows[i], slots - cols[o])
        if k > 0:
            matrix[i][o] += k
            rows[i] += k
            cols[o] += k
    return matrix


class TestFigure3:
    def test_exact_trace(self):
        """Reproduce Figure 3: adding 4->3 to the p/q sub-schedule takes
        three steps and lands exactly on the paper's final arrangement."""
        schedule = figure3_initial_schedule()
        trace = insert_cell(schedule, 3, 2)  # 4->3, zero-based
        assert trace.placed_slot == 0  # slot p
        assert trace.steps == 3
        assert trace.displacements == 4
        # Final schedule from the figure (0-based):
        assert schedule.slot_assignments(0) == {0: 1, 1: 0, 2: 3, 3: 2}
        assert schedule.slot_assignments(1) == {0: 2, 2: 1, 3: 0}
        schedule.check_consistent()

    def test_displacement_chain_order(self):
        schedule = figure3_initial_schedule()
        trace = insert_cell(schedule, 3, 2)
        # First the conflicting 1->3 moves p->q, then 1->2 moves q->p,
        # then 3->2 moves p->q, then 3->4 moves q->p.
        assert trace.moves == [
            (0, 1, 0, 2),
            (1, 0, 0, 1),
            (0, 1, 2, 1),
            (1, 0, 2, 3),
        ]

    def test_full_figure2_insertion(self):
        schedule = figure2_schedule()
        trace = insert_cell(schedule, 3, 2)
        schedule.check_consistent()
        matrix = schedule.reservation_matrix()
        assert matrix[3][2] == 2  # the original 4->3 plus the new one


class TestInsertion:
    def test_free_slot_used_directly(self):
        schedule = FrameSchedule(4, 4)
        trace = insert_cell(schedule, 0, 0)
        assert trace.displacements == 0
        assert trace.steps == 1

    def test_overcommit_rejected(self):
        schedule = FrameSchedule(2, 1)
        insert_cell(schedule, 0, 0)
        with pytest.raises(ScheduleError):
            insert_cell(schedule, 0, 1)  # input 0 already full

    def test_insert_reservation_counts(self):
        schedule = FrameSchedule(4, 8)
        traces = insert_reservation(schedule, 1, 2, 5)
        assert len(traces) == 5
        assert schedule.reservation_matrix()[1][2] == 5

    def test_insert_reservation_validation(self):
        schedule = FrameSchedule(4, 2)
        with pytest.raises(ValueError):
            insert_reservation(schedule, 0, 0, 0)
        with pytest.raises(ScheduleError):
            insert_reservation(schedule, 0, 0, 3)

    def test_remove_cell_inverse(self):
        schedule = FrameSchedule(4, 4)
        insert_cell(schedule, 1, 2)
        slot = remove_cell(schedule, 1, 2)
        assert 0 <= slot < 4
        assert schedule.total_reserved() == 0
        with pytest.raises(ScheduleError):
            remove_cell(schedule, 1, 2)


class TestTheorem:
    """The Slepian-Duguid theorem: every admissible matrix schedules."""

    @pytest.mark.parametrize("n,slots", [(4, 4), (8, 16), (16, 32)])
    def test_full_load_matrices_schedule(self, n, slots):
        """A doubly-'stochastic' integer matrix at 100% load fits exactly."""
        rng = random.Random(n * slots)
        # Build full-load matrix as a sum of `slots` random permutations.
        matrix = [[0] * n for _ in range(n)]
        for _ in range(slots):
            perm = list(range(n))
            rng.shuffle(perm)
            for i, o in enumerate(perm):
                matrix[i][o] += 1
        schedule, _ = build_schedule(n, slots, matrix)
        schedule.check_consistent()
        assert schedule.reservation_matrix() == matrix
        assert all(schedule.input_load(i) == slots for i in range(n))

    def test_displacements_bounded_by_2n(self):
        """Each insertion's chain touches each input at most twice."""
        rng = random.Random(99)
        n, slots = 8, 16
        for _ in range(20):
            matrix = random_admissible_matrix(n, slots, rng)
            schedule = FrameSchedule(n, slots)
            for i in range(n):
                for o in range(n):
                    for _ in range(matrix[i][o]):
                        trace = insert_cell(schedule, i, o)
                        assert trace.displacements <= 2 * n
                        assert trace.steps <= n + 1
            schedule.check_consistent()


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n=st.sampled_from([2, 4, 8]),
    slots=st.sampled_from([2, 8, 32]),
)
def test_random_admissible_matrices_schedule(seed, n, slots):
    rng = random.Random(seed)
    matrix = random_admissible_matrix(n, slots, rng)
    schedule, _ = build_schedule(n, slots, matrix)
    schedule.check_consistent()
    assert schedule.reservation_matrix() == matrix


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_insert_remove_roundtrip(seed):
    rng = random.Random(seed)
    schedule = FrameSchedule(4, 8)
    live = []
    for _ in range(40):
        if live and rng.random() < 0.4:
            i, o = live.pop(rng.randrange(len(live)))
            remove_cell(schedule, i, o)
        else:
            i, o = rng.randrange(4), rng.randrange(4)
            if schedule.admits(i, o):
                insert_cell(schedule, i, o)
                live.append((i, o))
        schedule.check_consistent()
    assert schedule.total_reserved() == len(live)
