"""Tests for frame-schedule packing/spreading policies."""

import random

import pytest

from repro.core.guaranteed.frames import ScheduleError
from repro.core.guaranteed.packing import (
    completely_free_fraction,
    first_fit_schedule,
    free_pair_fraction,
    make_policy_schedule,
    packed_schedule,
    packed_spread_schedule,
    spread_schedule,
)


def demand_4x4():
    return [
        [0, 1, 1, 1],
        [2, 0, 0, 0],
        [0, 2, 0, 1],
        [1, 0, 1, 0],
    ]


def max_line_load(demand):
    n = len(demand)
    rows = [sum(demand[i]) for i in range(n)]
    cols = [sum(demand[i][o] for i in range(n)) for o in range(n)]
    return max(rows + cols)


class TestPolicies:
    def test_all_policies_realize_demand(self):
        demand = demand_4x4()
        for policy in ("first_fit", "packed", "packed_spread"):
            schedule = make_policy_schedule(policy, 4, 16, demand)
            schedule.check_consistent()
            assert schedule.reservation_matrix() == demand

    def test_packed_uses_minimum_slots(self):
        """Packing fits all demand into max(row/col sum) slots (optimal)."""
        rng = random.Random(5)
        for _ in range(10):
            demand = [[rng.randint(0, 2) for _ in range(4)] for _ in range(4)]
            schedule = packed_schedule(4, 16, demand)
            schedule.check_consistent()
            assert schedule.reservation_matrix() == demand
            assert schedule.slots_used() == max_line_load(demand)

    def test_packed_no_worse_than_first_fit(self):
        rng = random.Random(7)
        for _ in range(10):
            demand = [[rng.randint(0, 2) for _ in range(4)] for _ in range(4)]
            packed = packed_schedule(4, 16, demand)
            loose = first_fit_schedule(4, 16, demand)
            assert packed.slots_used() <= loose.slots_used()

    def test_spread_preserves_matchings(self):
        demand = demand_4x4()
        packed = packed_schedule(4, 16, demand)
        spread = spread_schedule(packed)
        spread.check_consistent()
        assert spread.reservation_matrix() == demand
        assert spread.slots_used() == packed.slots_used()

    def test_spread_distributes_used_slots(self):
        demand = demand_4x4()  # packs into 3 of 16 slots
        spread = packed_spread_schedule(4, 16, demand)
        used = [
            slot for slot in range(16) if spread.slot_assignments(slot)
        ]
        # Evenly spread: gaps of ~16/3; never all adjacent.
        gaps = [b - a for a, b in zip(used, used[1:])]
        assert min(gaps) >= 4

    def test_packed_maximizes_completely_free_slots(self):
        """Packed schedules leave more completely-free slots, hence more
        best-effort opportunity, than first-fit (the section-4 argument)."""
        rng = random.Random(11)
        for _ in range(10):
            demand = [
                [rng.randint(0, 3) for _ in range(4)] for _ in range(4)
            ]
            packed = packed_schedule(4, 32, demand)
            loose = first_fit_schedule(4, 32, demand)
            assert completely_free_fraction(packed) >= completely_free_fraction(loose)
            assert 0.0 <= free_pair_fraction(packed) <= 1.0


class TestValidation:
    def test_overcommitted_demand_rejected(self):
        demand = [[9, 0], [0, 0]]
        with pytest.raises(ScheduleError):
            packed_schedule(2, 4, demand)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            packed_schedule(3, 4, [[0, 0], [0, 0]])

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            make_policy_schedule("fancy", 2, 2, [[0, 0], [0, 0]])

    def test_empty_demand(self):
        schedule = packed_schedule(4, 8, [[0] * 4 for _ in range(4)])
        assert schedule.slots_used() == 0
        assert spread_schedule(schedule).slots_used() == 0
