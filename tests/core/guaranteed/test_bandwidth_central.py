"""Tests for bandwidth central admission control."""

import pytest

from repro._types import host_id, switch_id
from repro.core.guaranteed.bandwidth_central import (
    BandwidthCentral,
    ReservationDenied,
)
from repro.net.topology import Topology


def line_view(n=3, with_hosts=True):
    topo = Topology.line(n)
    if with_hosts:
        topo.add_host(0)
        topo.add_host(1)
        topo.connect("h0", "s0", port_a=0)
        topo.connect("h1", f"s{n-1}", port_a=0)
    return topo.view()


def diamond_view():
    """s0 - s1 - s3 and s0 - s2 - s3: two disjoint paths."""
    topo = Topology()
    for i in range(4):
        topo.add_switch(i)
    topo.connect("s0", "s1")
    topo.connect("s1", "s3")
    topo.connect("s0", "s2")
    topo.connect("s2", "s3")
    topo.add_host(0)
    topo.add_host(1)
    topo.connect("h0", "s0", port_a=0)
    topo.connect("h1", "s3", port_a=0)
    return topo.view()


class TestAdmission:
    def test_grant_along_line(self):
        central = BandwidthCentral(line_view(), frame_slots=100)
        reservation = central.request(host_id(0), host_id(1), 10)
        assert reservation.path_length == 3
        assert [n for n in reservation.route_nodes[:1]] == [host_id(0)]
        assert reservation.route_nodes[-1] == host_id(1)
        assert central.requests_granted == 1

    def test_capacity_consumed_and_denied_at_exhaustion(self):
        central = BandwidthCentral(line_view(), frame_slots=100)
        central.request(host_id(0), host_id(1), 60)
        with pytest.raises(ReservationDenied):
            central.request(host_id(0), host_id(1), 60)
        assert central.requests_denied == 1

    def test_release_restores_capacity(self):
        central = BandwidthCentral(line_view(), frame_slots=100)
        reservation = central.request(host_id(0), host_id(1), 100)
        central.release(reservation)
        central.request(host_id(0), host_id(1), 100)

    def test_release_unknown_rejected(self):
        central = BandwidthCentral(line_view(), frame_slots=100)
        reservation = central.request(host_id(0), host_id(1), 1)
        central.release(reservation)
        with pytest.raises(KeyError):
            central.release(reservation)

    def test_oversized_request_denied(self):
        central = BandwidthCentral(line_view(), frame_slots=100)
        with pytest.raises(ReservationDenied):
            central.request(host_id(0), host_id(1), 101)

    def test_request_validation(self):
        central = BandwidthCentral(line_view(), frame_slots=100)
        with pytest.raises(ValueError):
            central.request(host_id(0), host_id(1), 0)
        with pytest.raises(ValueError):
            central.request(host_id(0), host_id(0), 1)
        with pytest.raises(ReservationDenied):
            central.request(host_id(0), host_id(9), 1)

    def test_directions_independent(self):
        central = BandwidthCentral(line_view(), frame_slots=100)
        central.request(host_id(0), host_id(1), 100)
        # Reverse direction is untouched.
        central.request(host_id(1), host_id(0), 100)


class TestRouting:
    def test_second_circuit_takes_alternate_path(self):
        """With widest-shortest selection, a heavily loaded core path
        diverts new reservations to the parallel route (the shared host
        links still carry both)."""
        central = BandwidthCentral(diamond_view(), frame_slots=100)
        first = central.request(host_id(0), host_id(1), 60)
        second = central.request(host_id(0), host_id(1), 30)
        mid_first = first.route_nodes[2]
        mid_second = second.route_nodes[2]
        assert mid_first != mid_second
        assert {mid_first, mid_second} == {switch_id(1), switch_id(2)}

    def test_switch_hops_have_ports(self):
        central = BandwidthCentral(line_view(), frame_slots=100)
        reservation = central.request(host_id(0), host_id(1), 5)
        for switch, in_port, out_port in reservation.switch_hops:
            assert switch.is_switch
            assert in_port != out_port

    def test_hosts_never_relay(self):
        """A path must not pass *through* a host even if that is shorter."""
        topo = Topology()
        topo.add_switch(0)
        topo.add_switch(1)
        topo.add_host(0)  # dual-homed to both switches
        topo.connect("h0", "s0", port_a=0)
        topo.connect("h0", "s1", port_a=1)
        topo.add_host(1)
        topo.connect("h1", "s1", port_a=0)
        # s0 and s1 are NOT directly connected: the only s0->s1 "path"
        # runs through h0, which is illegal -- so h0 (attached to both)
        # can still reach h1, but any route must use one of h0's own
        # links, not transit another host.
        central = BandwidthCentral(topo.view(), frame_slots=10)
        reservation = central.request(host_id(0), host_id(1), 1)
        assert all(not n.is_host for n in reservation.route_nodes[1:-1])

    def test_capacity_override_respected(self):
        view = line_view()
        slow_edges = {
            edge: 25
            for edge in view.edges
            if any(n.is_host for (n, _) in edge)
        }
        central = BandwidthCentral(
            view, frame_slots=100, capacities=slow_edges
        )
        with pytest.raises(ReservationDenied):
            central.request(host_id(0), host_id(1), 26)
        central.request(host_id(0), host_id(1), 25)

    def test_heuristic_validation(self):
        with pytest.raises(ValueError):
            BandwidthCentral(line_view(), heuristic="magic")

    def test_total_reserved(self):
        central = BandwidthCentral(line_view(), frame_slots=100)
        central.request(host_id(0), host_id(1), 7)
        central.request(host_id(1), host_id(0), 5)
        assert central.total_reserved() == 12
