"""Tests for frame schedules (Figure 2 semantics)."""

import pytest

from repro.core.guaranteed.frames import (
    FrameSchedule,
    ScheduleError,
    figure2_schedule,
    figure3_initial_schedule,
)


class TestPlacement:
    def test_place_and_lookup(self):
        schedule = FrameSchedule(4, 3)
        schedule.place(0, 1, 2)
        assert schedule.output_of(0, 1) == 2
        assert schedule.input_of(0, 2) == 1
        assert schedule.input_load(1) == 1
        assert schedule.output_load(2) == 1

    def test_input_conflict_rejected(self):
        schedule = FrameSchedule(4, 3)
        schedule.place(0, 1, 2)
        with pytest.raises(ScheduleError):
            schedule.place(0, 1, 3)

    def test_output_conflict_rejected(self):
        schedule = FrameSchedule(4, 3)
        schedule.place(0, 1, 2)
        with pytest.raises(ScheduleError):
            schedule.place(0, 0, 2)

    def test_out_of_range_rejected(self):
        schedule = FrameSchedule(4, 3)
        with pytest.raises(ScheduleError):
            schedule.place(5, 0, 0)
        with pytest.raises(ScheduleError):
            schedule.place(0, 9, 0)

    def test_clear_returns_pair(self):
        schedule = FrameSchedule(4, 3)
        schedule.place(1, 2, 3)
        assert schedule.clear(1, 2) == (2, 3)
        assert schedule.input_load(2) == 0
        with pytest.raises(ScheduleError):
            schedule.clear(1, 2)

    def test_move_is_atomic_on_failure(self):
        schedule = FrameSchedule(4, 2)
        schedule.place(0, 1, 2)
        schedule.place(1, 1, 3)  # destination slot has input 1 busy
        with pytest.raises(ScheduleError):
            schedule.move(0, 1, 1)
        assert schedule.output_of(0, 1) == 2  # restored


class TestQueries:
    def test_find_free_slot(self):
        schedule = FrameSchedule(2, 2)
        schedule.place(0, 0, 1)
        schedule.place(1, 1, 1)
        # Slot 0: input1 free, output0 free -> (1, 0) fits.
        assert schedule.find_free_slot(1, 0) == 0
        assert schedule.find_input_free_slot(0) == 1
        assert schedule.find_output_free_slot(1) is None

    def test_admits_checks_totals(self):
        schedule = FrameSchedule(2, 2)
        schedule.place(0, 0, 1)
        schedule.place(1, 0, 1)
        assert not schedule.admits(0, 0)  # input 0 full
        assert not schedule.admits(1, 1)  # output 1 full
        assert schedule.admits(1, 0)

    def test_reservation_matrix(self):
        schedule = figure2_schedule()
        matrix = schedule.reservation_matrix()
        assert matrix == [
            [0, 1, 1, 1],
            [2, 0, 0, 0],
            [0, 2, 0, 1],
            [1, 0, 1, 0],
        ]

    def test_slots_used_and_total(self):
        schedule = figure2_schedule()
        assert schedule.slots_used() == 3
        assert schedule.total_reserved() == 10

    def test_reserved_pairs_iterates_everything(self):
        schedule = figure2_schedule()
        pairs = list(schedule.reserved_pairs())
        assert len(pairs) == 10
        assert (0, 1, 0) in pairs  # slot 1: 2->1 (0-based)

    def test_copy_is_deep(self):
        schedule = figure2_schedule()
        duplicate = schedule.copy()
        duplicate.clear(0, 0)
        assert schedule.output_of(0, 0) == 2


class TestConsistency:
    def test_figure2_consistent(self):
        figure2_schedule().check_consistent()
        figure3_initial_schedule().check_consistent()

    def test_corruption_detected(self):
        schedule = FrameSchedule(4, 2)
        schedule.place(0, 1, 2)
        schedule._input_total[1] = 0  # sabotage
        with pytest.raises(ScheduleError):
            schedule.check_consistent()

    def test_render_matches_figure2_layout(self):
        text = figure2_schedule().render()
        assert "Slot 1: 1->3  2->1  3->2" in text
        assert "Slot 2: 1->4  2->1  3->2  4->3" in text
        assert "Slot 3: 1->2  3->4  4->1" in text


def test_constructor_validation():
    with pytest.raises(ValueError):
        FrameSchedule(0, 4)
    with pytest.raises(ValueError):
        FrameSchedule(4, 0)
