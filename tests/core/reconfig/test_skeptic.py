"""Tests for the skeptic's escalating hold-downs."""

import pytest

from repro.core.reconfig.skeptic import LinkVerdict, Skeptic


def make(**kwargs):
    defaults = dict(base_wait_us=100.0, max_level=4, decay_interval_us=10_000.0)
    defaults.update(kwargs)
    return Skeptic(**defaults)


def test_starts_working():
    assert make().verdict is LinkVerdict.WORKING


def test_failure_publishes_dead():
    events = []
    skeptic = make(on_verdict=lambda v, t: events.append((v, t)))
    skeptic.report_failure(now=50.0)
    assert skeptic.verdict is LinkVerdict.DEAD
    assert events == [(LinkVerdict.DEAD, 50.0)]


def test_recovery_requires_probation():
    skeptic = make()
    skeptic.report_failure(10.0)
    skeptic.report_recovery(20.0)
    assert skeptic.verdict is LinkVerdict.DEAD  # still on probation
    skeptic.tick(20.0 + 100.0 * 2 - 1)  # level 1 -> wait 200us
    assert skeptic.verdict is LinkVerdict.DEAD
    skeptic.tick(20.0 + 200.0)
    assert skeptic.verdict is LinkVerdict.WORKING


def test_wait_escalates_exponentially():
    skeptic = make()
    waits = []
    now = 0.0
    for _ in range(3):
        skeptic.report_failure(now)
        waits.append(skeptic.current_wait())
        skeptic.report_recovery(now + 1)
        now += 1 + skeptic.current_wait()
        skeptic.tick(now)
        assert skeptic.verdict is LinkVerdict.WORKING
    assert waits == [200.0, 400.0, 800.0]


def test_escalation_caps_at_max_level():
    skeptic = make(max_level=2)
    for i in range(10):
        skeptic.report_failure(float(i * 1000))
        skeptic.report_recovery(float(i * 1000 + 1))
        skeptic.tick(float(i * 1000 + 999))
    assert skeptic.level == 2
    assert skeptic.current_wait() == 400.0


def test_failure_during_probation_escalates_and_restarts():
    skeptic = make()
    skeptic.report_failure(0.0)  # level 1
    skeptic.report_recovery(10.0)
    skeptic.report_failure(50.0)  # during probation -> level 2
    assert skeptic.level == 2
    assert skeptic.verdict is LinkVerdict.DEAD
    skeptic.report_recovery(60.0)
    skeptic.tick(60.0 + 399.0)
    assert skeptic.verdict is LinkVerdict.DEAD
    skeptic.tick(60.0 + 400.0)
    assert skeptic.verdict is LinkVerdict.WORKING


def test_redundant_failure_reports_do_not_escalate():
    skeptic = make()
    skeptic.report_failure(0.0)
    skeptic.report_failure(1.0)
    skeptic.report_failure(2.0)
    assert skeptic.level == 1


def test_decay_reduces_level_after_good_behaviour():
    skeptic = make(decay_interval_us=1_000.0)
    skeptic.report_failure(0.0)
    skeptic.report_recovery(1.0)
    skeptic.tick(500.0)  # probation (200us after recovery) done by now
    assert skeptic.verdict is LinkVerdict.WORKING
    assert skeptic.level == 1
    skeptic.tick(500.0 + 1_000.0)
    assert skeptic.level == 0


def test_flapping_link_produces_few_verdict_changes():
    """The headline property: N rapid flaps produce far fewer published
    verdict transitions than 2N (the escalating hold-down suppresses
    them)."""
    skeptic = make(base_wait_us=1_000.0, max_level=8, decay_interval_us=1e9)
    now = 0.0
    flaps = 50
    for _ in range(flaps):
        skeptic.report_failure(now)
        now += 10.0
        skeptic.report_recovery(now)
        now += 10.0  # recovers quickly, but probation is never finished
        skeptic.tick(now)
    # One DEAD publication; the link never re-qualifies as WORKING.
    assert len(skeptic.verdict_changes) == 1
    assert skeptic.failures_seen == flaps


def test_verdict_history_records_timestamps():
    skeptic = make()
    skeptic.report_failure(5.0)
    skeptic.report_recovery(6.0)
    skeptic.tick(206.0)
    assert [v for _, v in skeptic.verdict_changes] == [
        LinkVerdict.DEAD,
        LinkVerdict.WORKING,
    ]


def test_initially_dead_option():
    skeptic = make(initially_working=False)
    assert skeptic.verdict is LinkVerdict.DEAD
    skeptic.report_recovery(0.0)
    skeptic.tick(100.0)
    assert skeptic.verdict is LinkVerdict.WORKING  # level 0: base wait


def test_probation_remaining():
    skeptic = make()
    assert skeptic.probation_remaining(0.0) is None
    skeptic.report_failure(0.0)
    skeptic.report_recovery(10.0)
    assert skeptic.probation_remaining(110.0) == pytest.approx(100.0)


def test_validation():
    with pytest.raises(ValueError):
        Skeptic(base_wait_us=0.0)
    with pytest.raises(ValueError):
        Skeptic(max_level=-1)
