"""Tests for epoch tags."""

from repro._types import switch_id
from repro.core.reconfig.epoch import GENESIS, EpochTag


def test_ordering_by_epoch_first():
    low = EpochTag(1, switch_id(99))
    high = EpochTag(2, switch_id(0))
    assert low < high


def test_ties_broken_by_switch_id():
    a = EpochTag(3, switch_id(1))
    b = EpochTag(3, switch_id(2))
    assert a < b
    assert max(a, b) == b


def test_successor_increments_epoch():
    tag = EpochTag(5, switch_id(1))
    successor = tag.successor(switch_id(9))
    assert successor.epoch == 6
    assert successor.initiator == switch_id(9)
    assert successor > tag


def test_genesis_precedes_everything_real():
    assert GENESIS < EpochTag(1, switch_id(0))
    assert GENESIS.successor(switch_id(0)) > GENESIS


def test_total_order_is_strict():
    tags = [
        EpochTag(e, switch_id(s)) for e in range(3) for s in range(3)
    ]
    ordered = sorted(tags)
    for a, b in zip(ordered, ordered[1:]):
        assert a < b


def test_str_rendering():
    assert str(EpochTag(4, switch_id(7))) == "e4@s7"
