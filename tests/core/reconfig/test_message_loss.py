"""Reconfiguration under random message loss.

The paper's liveness story is layered: lost protocol messages stall an
epoch, but the underlying failure that lost them is eventually published
by the monitors (or caught by the watchdog), triggering a fresh epoch
that supersedes the stalled one.  Here we drop reconfiguration messages
*randomly* (not tied to any link failure, the nastiest case) and require
eventual convergence to the correct topology purely through watchdog
supersession.
"""

import random
from typing import List

import pytest

from repro._types import switch_id
from repro.core.reconfig.algorithm import ReconfigurationAgent
from repro.net.topology import Topology
from tests.core.reconfig.test_algorithm import FakeBus


class LossyBus(FakeBus):
    """FakeBus that drops each delivery with probability ``loss``
    during the lossy window, then becomes reliable."""

    def __init__(self, topology, loss, rng, lossy_until=2_000.0, **kwargs):
        super().__init__(topology, **kwargs)
        self.loss = loss
        self.rng = rng
        self.lossy_until = lossy_until
        self.messages_dropped = 0

    def deliver(self, sender, port, message):
        if (
            self.sim.now < self.lossy_until
            and self.rng.random() < self.loss
        ):
            self.messages_dropped += 1
            return
        super().deliver(sender, port, message)


@pytest.mark.parametrize("loss", [0.05, 0.2, 0.5])
def test_convergence_despite_message_loss(loss):
    for seed in range(3):
        rng = random.Random(seed * 100 + int(loss * 100))
        topo = Topology.random_connected(8, extra_edges=6, rng=rng)
        bus = LossyBus(topo, loss=loss, rng=rng, delay_us=15.0)
        for agent in bus.agents.values():
            agent.trigger()
        # Watchdogs fire at 5 ms in the FakeBus; give several rounds.
        bus.sim.run(until=200_000.0)
        assert bus.all_done_same_view(), (
            f"loss={loss} seed={seed}: "
            f"{[(str(a.node_id), a.active, str(a.stored_tag)) for a in bus.agents.values()]}"
        )
        for agent in bus.agents.values():
            assert agent.view == topo.view()
        if loss > 0:
            assert bus.messages_dropped > 0


def test_loss_of_every_message_kind_tolerated():
    """Surgically drop exactly one message of each kind and confirm the
    watchdog recovers each time."""
    from repro.core.reconfig.messages import (
        Invitation,
        InvitationAck,
        TopologyDistribute,
        TopologyReport,
    )

    for victim_kind in (
        Invitation,
        InvitationAck,
        TopologyReport,
        TopologyDistribute,
    ):
        topo = Topology.grid(2, 2)
        bus = FakeBus(topo, delay_us=10.0)
        dropped: List[str] = []
        original = bus.deliver

        def deliver(sender, port, message, _orig=original, _kind=victim_kind):
            if isinstance(message, _kind) and not dropped:
                dropped.append(type(message).__name__)
                return
            _orig(sender, port, message)

        bus.deliver = deliver
        for transport in bus.transports.values():
            transport.bus = bus  # transports call bus.deliver via self.bus
        bus.agents[switch_id(0)].trigger()
        bus.sim.run(until=100_000.0)
        assert dropped == [victim_kind.__name__]
        assert bus.all_done_same_view(), f"stalled after dropping {dropped}"
        for agent in bus.agents.values():
            assert agent.view == topo.view()
