"""Unit tests for the reconfiguration agent over an in-memory transport.

These drive the three-phase algorithm directly -- no switches, links, or
monitors -- so the protocol logic (epoch ordering, aborts, declines,
watchdogs) can be exercised deterministically, including with message
loss and adversarial timing.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

import pytest

from repro._types import NodeId, switch_id
from repro.core.reconfig.algorithm import ReconfigurationAgent
from repro.core.reconfig.epoch import GENESIS, EpochTag
from repro.net.topology import Edge, Topology, TopologyView
from repro.sim.kernel import Simulator


class FakeBus:
    """An in-memory network of agents wired per a Topology description."""

    def __init__(self, topology: Topology, delay_us: float = 10.0) -> None:
        self.sim = Simulator()
        self.delay_us = delay_us
        self.agents: Dict[NodeId, ReconfigurationAgent] = {}
        self.transports: Dict[NodeId, "FakeTransport"] = {}
        self.dropped_edges: Set[Edge] = set()
        # (node, port) -> (peer node, peer port), from the ground truth.
        self.wiring: Dict[Tuple[NodeId, int], Tuple[NodeId, int]] = {}
        for (na, pa), (nb, pb) in topology.view().edges:
            self.wiring[(na, pa)] = (nb, pb)
            self.wiring[(nb, pb)] = (na, pa)
        self.view = topology.view()
        for node in topology.switches():
            transport = FakeTransport(self, node)
            self.transports[node] = transport
            agent = ReconfigurationAgent(
                self.sim, node, transport, watchdog_us=5_000.0
            )
            self.agents[node] = agent

    def edges_of(self, node: NodeId) -> Set[Edge]:
        return {
            edge
            for edge in self.view.edges
            if edge not in self.dropped_edges
            and node in (edge[0][0], edge[1][0])
        }

    def switch_ports(self, node: NodeId) -> List[int]:
        ports = []
        for (na, pa), (nb, pb) in self.view.edges:
            if ((na, pa), (nb, pb)) in self.dropped_edges:
                continue
            if na == node and nb.is_switch:
                ports.append(pa)
            elif nb == node and na.is_switch:
                ports.append(pb)
        return sorted(ports)

    def deliver(self, sender: NodeId, port: int, message) -> None:
        peer = self.wiring.get((sender, port))
        if peer is None:
            return
        edge_a, edge_b = (sender, port), peer
        edge = (edge_a, edge_b) if edge_a <= edge_b else (edge_b, edge_a)
        if edge in self.dropped_edges:
            return  # dead link loses the message
        node, peer_port = peer
        self.sim.schedule(
            self.delay_us, self.agents[node].handle, peer_port, message
        )

    def drop_edge_between(self, a: NodeId, b: NodeId) -> None:
        for edge in self.view.edges:
            (na, _), (nb, _) = edge
            if {na, nb} == {a, b}:
                self.dropped_edges.add(edge)

    def all_done_same_view(self) -> bool:
        agents = self.agents.values()
        if any(a.active for a in agents):
            return False
        views = {a.view for a in agents}
        tags = {a.view_tag for a in agents}
        return len(views) == 1 and len(tags) == 1 and None not in tags


class FakeTransport:
    def __init__(self, bus: FakeBus, node: NodeId) -> None:
        self.bus = bus
        self.node = node

    def reconfig_ports(self) -> List[int]:
        return self.bus.switch_ports(self.node)

    def local_edges(self) -> Set[Edge]:
        return self.bus.edges_of(self.node)

    def send_reconfig(self, port_index: int, message) -> None:
        self.bus.deliver(self.node, port_index, message)


def test_single_switch_completes_alone():
    topo = Topology()
    topo.add_switch(0)
    bus = FakeBus(topo)
    agent = bus.agents[switch_id(0)]
    tag = agent.trigger()
    bus.sim.run()
    assert agent.view == TopologyView(frozenset())
    assert agent.view_tag == tag
    assert agent.tree_depth == 0


def test_two_switches_agree():
    topo = Topology.line(2)
    bus = FakeBus(topo)
    bus.agents[switch_id(0)].trigger()
    bus.sim.run(until=4_000.0)
    assert bus.all_done_same_view()
    assert bus.agents[switch_id(0)].view == topo.view()


def test_all_switches_learn_full_topology():
    topo = Topology.grid(3, 3)
    bus = FakeBus(topo)
    bus.agents[switch_id(4)].trigger()
    bus.sim.run(until=4_500.0)
    assert bus.all_done_same_view()
    for agent in bus.agents.values():
        assert agent.view == topo.view()


def test_initiator_is_root_and_depths_consistent():
    topo = Topology.line(5)
    bus = FakeBus(topo)
    bus.agents[switch_id(0)].trigger()
    bus.sim.run(until=4_500.0)
    assert bus.agents[switch_id(0)].tree_depth == 0
    # On a line the propagation tree *is* the line: depth = distance.
    for i in range(5):
        assert bus.agents[switch_id(i)].tree_depth == i


def test_larger_tag_supersedes():
    topo = Topology.line(3)
    bus = FakeBus(topo)
    bus.agents[switch_id(0)].trigger()  # e1@s0
    bus.agents[switch_id(2)].trigger()  # e1@s2 > e1@s0
    bus.sim.run(until=4_500.0)
    assert bus.all_done_same_view()
    tag = bus.agents[switch_id(0)].view_tag
    assert tag == EpochTag(1, switch_id(2)) or tag.epoch > 1


def test_many_simultaneous_triggers_converge():
    topo = Topology.grid(3, 4)
    bus = FakeBus(topo)
    for agent in bus.agents.values():
        agent.trigger()
    bus.sim.run(until=4_000.0)
    assert bus.all_done_same_view()
    for agent in bus.agents.values():
        assert agent.view == topo.view()


def test_staggered_triggers_converge():
    topo = Topology.grid(2, 4)
    bus = FakeBus(topo)
    for index, agent in enumerate(bus.agents.values()):
        bus.sim.schedule(index * 7.0, agent.trigger)
    bus.sim.run(until=4_000.0)
    assert bus.all_done_same_view()


def test_trigger_during_active_reconfig_aborts_it():
    topo = Topology.line(4)
    bus = FakeBus(topo, delay_us=50.0)
    bus.agents[switch_id(0)].trigger()
    # While propagation is under way, s3 notices something and triggers.
    bus.sim.schedule(75.0, bus.agents[switch_id(3)].trigger)
    bus.sim.run(until=5_500.0)
    assert bus.all_done_same_view()
    assert bus.agents[switch_id(3)].stats.initiated == 1
    # s3 triggered before s0's invitation reached it, so both used epoch
    # 1 -- and the switch-id tie-break makes s3's configuration win.
    assert bus.agents[switch_id(0)].view_tag == EpochTag(1, switch_id(3))
    # s0's own configuration was aborted when s3's invitation arrived.
    assert bus.agents[switch_id(0)].stats.aborted >= 1


def test_declined_invitations_are_acked():
    topo = Topology.ring(4)
    bus = FakeBus(topo)
    bus.agents[switch_id(0)].trigger()
    bus.sim.run(until=4_000.0)
    assert bus.all_done_same_view()
    # Root invites 2 neighbors; s1 and s3 invite their other neighbor;
    # whichever of them reaches s2 first makes s2 its child, and s2
    # invites back across the remaining ring edge -- 5 invitations, of
    # which the one crossing the cycle-closing edge is declined.
    total_invites = sum(a.stats.invitations_sent for a in bus.agents.values())
    assert total_invites == 5
    children = sum(
        1 for a in bus.agents.values() if a.parent_port is not None
    )
    assert children == 3  # tree over 4 nodes: one declined invitation


def test_stored_tag_survives_completion():
    topo = Topology.line(2)
    bus = FakeBus(topo)
    bus.agents[switch_id(0)].trigger()
    bus.sim.run(until=4_000.0)
    first_tag = bus.agents[switch_id(0)].view_tag
    bus.agents[switch_id(0)].trigger()
    bus.sim.run(until=8_000.0)
    assert bus.agents[switch_id(0)].view_tag.epoch == first_tag.epoch + 1


def test_lost_messages_recovered_by_watchdog():
    """Kill a link mid-propagation: the invitation is lost, the epoch
    stalls, and the watchdog starts a fresh one that succeeds on the
    surviving topology."""
    topo = Topology.ring(4)
    bus = FakeBus(topo, delay_us=20.0)
    # Cut s1-s2 immediately, so invitations across it vanish, but the
    # agents have not noticed any state change (no monitor here).
    bus.drop_edge_between(switch_id(1), switch_id(2))
    bus.agents[switch_id(0)].trigger()
    bus.sim.run(until=30_000.0)
    assert bus.all_done_same_view()
    # The final view must exclude the dropped edge.
    final = bus.agents[switch_id(0)].view
    assert len(final.edges) == 3


def test_genesis_tag_is_floor():
    topo = Topology()
    topo.add_switch(0)
    bus = FakeBus(topo)
    agent = bus.agents[switch_id(0)]
    assert agent.stored_tag == GENESIS
    tag = agent.trigger()
    assert tag.epoch == 1


def test_unknown_message_type_rejected():
    topo = Topology()
    topo.add_switch(0)
    bus = FakeBus(topo)
    with pytest.raises(TypeError):
        bus.agents[switch_id(0)].handle(0, "garbage")
