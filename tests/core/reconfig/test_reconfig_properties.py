"""Property-based reconfiguration tests: random graphs, random trigger
schedules, random delays -- convergence and agreement must always hold."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro._types import switch_id
from repro.net.topology import Topology
from tests.core.reconfig.test_algorithm import FakeBus


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_switches=st.integers(min_value=2, max_value=12),
    extra_edges=st.integers(min_value=0, max_value=10),
    n_triggers=st.integers(min_value=1, max_value=6),
)
def test_random_trigger_schedules_converge(
    seed, n_switches, extra_edges, n_triggers
):
    rng = random.Random(seed)
    topo = Topology.random_connected(n_switches, extra_edges, rng=rng)
    bus = FakeBus(topo, delay_us=rng.uniform(1.0, 40.0))
    for _ in range(n_triggers):
        victim = rng.randrange(n_switches)
        at = rng.uniform(0.0, 500.0)
        bus.sim.schedule(at, bus.agents[switch_id(victim)].trigger, )
    bus.sim.run(until=500_000.0)
    assert bus.all_done_same_view()
    for agent in bus.agents.values():
        assert agent.view == topo.view()
        # The winning tag's epoch never exceeds the number of triggers
        # plus watchdog restarts; sanity-bound it.
        assert agent.view_tag.epoch <= n_triggers + 12


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_switches=st.integers(min_value=3, max_value=10),
)
def test_sequential_reconfigurations_monotone_epochs(seed, n_switches):
    """Back-to-back reconfigurations produce strictly increasing tags,
    and each one converges before its own watchdog horizon."""
    rng = random.Random(seed)
    topo = Topology.random_connected(n_switches, n_switches // 2, rng=rng)
    bus = FakeBus(topo, delay_us=10.0)
    tags = []
    for round_index in range(3):
        victim = rng.randrange(n_switches)
        bus.agents[switch_id(victim)].trigger()
        bus.sim.run(until=bus.sim.now + 4_000.0)
        assert bus.all_done_same_view()
        tags.append(bus.agents[switch_id(0)].view_tag)
    assert tags[0] < tags[1] < tags[2]


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_initiator_becomes_root_when_unopposed(seed):
    rng = random.Random(seed)
    topo = Topology.random_connected(8, 5, rng=rng)
    bus = FakeBus(topo, delay_us=10.0)
    initiator = switch_id(rng.randrange(8))
    bus.agents[initiator].trigger()
    bus.sim.run(until=100_000.0)
    assert bus.all_done_same_view()
    assert bus.agents[initiator].parent_port is None
    assert bus.agents[initiator].tree_depth == 0
    # Exactly one root.
    roots = [
        a for a in bus.agents.values() if a.parent_port is None
    ]
    assert roots == [bus.agents[initiator]]


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_tree_edges_form_spanning_tree(seed):
    """Parent/child relations after convergence form a spanning tree of
    the switch graph: n-1 child links, all consistent."""
    rng = random.Random(seed)
    topo = Topology.random_connected(9, 6, rng=rng)
    bus = FakeBus(topo, delay_us=10.0)
    bus.agents[switch_id(0)].trigger()
    bus.sim.run(until=100_000.0)
    assert bus.all_done_same_view()
    children_total = sum(
        len(agent._children) for agent in bus.agents.values()
    )
    assert children_total == len(bus.agents) - 1
    # Depths are consistent with parenthood: every non-root's depth is
    # positive and at most n-1.
    for agent in bus.agents.values():
        if agent.parent_port is None:
            assert agent.tree_depth == 0
        else:
            assert 1 <= agent.tree_depth <= len(bus.agents) - 1
