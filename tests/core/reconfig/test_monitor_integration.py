"""Monitor + skeptic behaviour on real simulated links (via Network)."""

import pytest

from repro._types import switch_id
from repro.core.reconfig.monitor import PortMonitor
from repro.core.reconfig.skeptic import LinkVerdict, Skeptic
from tests.conftest import converged_line, line_with_hosts


def test_neighbor_discovery_names_peer_and_port(small_net):
    s1 = small_net.switch("s1")
    for card in s1.cards:
        if card.monitor is not None:
            assert card.monitor.neighbor is not None
            neighbor_id, neighbor_port = card.monitor.neighbor
            peer = card.port.peer()
            assert peer.node.node_id == neighbor_id
            assert peer.index == neighbor_port


def test_failure_detected_within_miss_budget():
    net = converged_line(3)
    config = net.switch_config
    link = net.fail_link("s0", "s1")
    t_fail = net.now
    s0 = net.switch("s0")
    card = next(
        c
        for c in s0.cards
        if c.monitor and c.monitor.neighbor and c.monitor.neighbor[0] == switch_id(1)
    )
    net.run_until(
        lambda: card.skeptic.verdict is LinkVerdict.DEAD,
        timeout_us=50_000.0,
        check_interval_us=100.0,
    )
    detection = net.now - t_fail
    budget = config.ping_interval_us * (config.miss_threshold + 1) + config.ack_timeout_us
    assert detection <= budget


def test_both_ends_detect_failure():
    net = converged_line(3)
    net.fail_link("s1", "s2")

    def both_dead():
        dead = 0
        for sid in ("s1", "s2"):
            for card in net.switch(sid).cards:
                if card.skeptic and card.skeptic.verdict is LinkVerdict.DEAD:
                    dead += 1
        return dead >= 2

    net.run_until(both_dead, timeout_us=50_000.0)


def test_recovery_gated_by_skeptic():
    net = converged_line(3)
    net.fail_link("s0", "s1")
    s0 = net.switch("s0")
    card = next(
        c
        for c in s0.cards
        if c.monitor and c.monitor.neighbor and c.monitor.neighbor[0] == switch_id(1)
    )
    net.run_until(
        lambda: card.skeptic.verdict is LinkVerdict.DEAD, timeout_us=50_000.0
    )
    net.restore_link("s0", "s1")
    t_restore = net.now
    net.run_until(
        lambda: card.skeptic.verdict is LinkVerdict.WORKING,
        timeout_us=200_000.0,
    )
    # Recovery must have waited at least the level-1 probation.
    assert net.now - t_restore >= net.switch_config.skeptic_base_wait_us


def test_host_link_death_does_not_trigger_reconfiguration():
    net = converged_line(3)
    tag_before = net.switch("s0").reconfig.view_tag
    net.fail_link("h0", "s0")
    net.run(50_000)
    assert net.switch("s0").reconfig.view_tag == tag_before
    # (The *host* fails over instead; see the host tests.)


def test_switch_link_death_does_trigger_reconfiguration():
    net = converged_line(4)
    tag_before = net.switch("s0").reconfig.view_tag
    net.fail_link("s1", "s2")
    net.run_until(
        lambda: net.fully_reconfigured()
        and net.switch("s0").reconfig.view_tag != tag_before,
        timeout_us=200_000.0,
    )


def test_monitor_constructor_validation():
    from repro.sim.kernel import Simulator
    from repro.net.node import Node

    class Dummy(Node):
        def on_cell(self, port, cell):
            pass

    sim = Simulator()
    node = Dummy(sim, switch_id(0), 1)
    skeptic = Skeptic()
    with pytest.raises(ValueError):
        PortMonitor(
            sim, switch_id(0), node.port(0), skeptic,
            ping_interval_us=100.0, ack_timeout_us=200.0,
        )
    with pytest.raises(ValueError):
        PortMonitor(
            sim, switch_id(0), node.port(0), skeptic, miss_threshold=0
        )


def test_ping_counters_advance():
    net = converged_line(2)
    s0 = net.switch("s0")
    counts = [
        (c.monitor.pings_sent, c.monitor.acks_received)
        for c in s0.cards
        if c.monitor
    ]
    assert all(p > 0 and a > 0 for p, a in counts)
    net.run(10_000)
    counts_after = [
        (c.monitor.pings_sent, c.monitor.acks_received)
        for c in s0.cards
        if c.monitor
    ]
    assert all(
        after > before
        for (before, _), (after, _) in zip(counts, counts_after)
    )
