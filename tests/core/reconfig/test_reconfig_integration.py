"""Network-level reconfiguration: boot, failure, recovery, scale."""

import random

import pytest

from repro._types import switch_id
from repro.constants import RECONFIGURATION_BUDGET_US
from repro.net.network import Network
from repro.net.topology import Topology
from tests.conftest import converged_line, fast_switch_config


def make_net(topo, seed=1, **overrides):
    net = Network(topo, seed=seed, switch_config=fast_switch_config(**overrides))
    net.start()
    return net


class TestBootConvergence:
    @pytest.mark.parametrize(
        "topo_factory",
        [
            lambda: Topology.line(4),
            lambda: Topology.ring(5),
            lambda: Topology.grid(3, 3),
            lambda: Topology.star(5),
        ],
        ids=["line", "ring", "grid", "star"],
    )
    def test_all_switches_learn_ground_truth(self, topo_factory):
        topo = topo_factory()
        net = make_net(topo)
        net.run_until_converged(timeout_us=500_000)
        assert net.converged_view() == net.expected_view()

    def test_random_topologies_converge(self):
        for seed in range(4):
            topo = Topology.random_connected(
                10, extra_edges=5, rng=random.Random(seed)
            )
            net = make_net(topo, seed=seed)
            net.run_until_converged(timeout_us=500_000)
            assert net.converged_view() == net.expected_view()

    def test_boot_well_under_budget(self):
        """The 200 ms AN1 budget, at SRC scale (simulated)."""
        topo = Topology.src_lan(n_switches=10, n_hosts=10, rng=random.Random(2))
        net = make_net(topo, seed=3)
        elapsed = net.run_until_converged(timeout_us=RECONFIGURATION_BUDGET_US)
        assert elapsed < RECONFIGURATION_BUDGET_US


class TestFailureReconfiguration:
    def test_link_failure_removes_edge_from_views(self):
        net = make_net(Topology.grid(2, 3))
        net.run_until_converged(timeout_us=500_000)
        net.fail_link("s0", "s1")
        net.run_until(net.fully_reconfigured, timeout_us=300_000)
        view = net.converged_view()
        assert view == net.expected_view_for(net.main_component_switches())

    def test_switch_crash_reconfigures_survivors(self):
        net = make_net(Topology.grid(3, 3))
        net.run_until_converged(timeout_us=500_000)
        t0 = net.now
        net.crash_switch("s4")  # the center switch
        net.run_until(net.fully_reconfigured, timeout_us=300_000)
        elapsed = net.now - t0
        assert elapsed < RECONFIGURATION_BUDGET_US
        survivors = net.main_component_switches()
        assert switch_id(4) not in survivors
        assert len(survivors) == 8

    def test_partition_leaves_consistent_fragments(self):
        """Cutting a line in half leaves two self-consistent views."""
        net = make_net(Topology.line(4))
        net.run_until_converged(timeout_us=500_000)
        net.fail_link("s1", "s2")
        left_expected = net.expected_view_for([switch_id(0), switch_id(1)])
        right_expected = net.expected_view_for([switch_id(2), switch_id(3)])
        net.run_until(
            lambda: net.converged()
            and net.switch("s0").reconfig.view == left_expected
            and net.switch("s2").reconfig.view == right_expected,
            timeout_us=300_000,
        )
        assert net.switch("s1").reconfig.view == left_expected
        assert net.switch("s3").reconfig.view == right_expected
        assert left_expected != right_expected

    def test_repeated_failures_and_recoveries(self):
        net = make_net(Topology.grid(2, 3))
        net.run_until_converged(timeout_us=500_000)
        for trial in range(3):
            net.fail_link("s1", "s2")
            net.run_until(net.fully_reconfigured, timeout_us=400_000)
            net.restore_link("s1", "s2")
            net.run_until(net.fully_reconfigured, timeout_us=800_000)
            assert net.converged_view() == net.expected_view()

    def test_restore_is_skeptic_gated(self):
        net = make_net(Topology.ring(4))
        net.run_until_converged(timeout_us=500_000)
        net.fail_link("s0", "s1")
        net.run_until(net.fully_reconfigured, timeout_us=300_000)
        t0 = net.now
        net.restore_link("s0", "s1")
        net.run_until(
            lambda: net.fully_reconfigured()
            and len(net.converged_view().edges) == 4,
            timeout_us=800_000,
        )
        assert net.now - t0 >= net.switch_config.skeptic_base_wait_us


class TestTreeShape:
    def test_propagation_tree_depth_close_to_bfs(self):
        """Section 2: "the tree obtained is usually very close to a
        breadth-first tree"."""
        topo = Topology.grid(4, 4)
        net = make_net(topo)
        net.run_until_converged(timeout_us=500_000)
        root = net.reconfig_root()
        # BFS depths over ground truth:
        from collections import deque

        adjacency = {}
        for (na, _), (nb, _) in topo.view().edges:
            if na.is_switch and nb.is_switch:
                adjacency.setdefault(na, []).append(nb)
                adjacency.setdefault(nb, []).append(na)
        depth = {root: 0}
        queue = deque([root])
        while queue:
            node = queue.popleft()
            for neighbor in adjacency[node]:
                if neighbor not in depth:
                    depth[neighbor] = depth[node] + 1
                    queue.append(neighbor)
        max_bfs = max(depth.values())
        max_tree = max(
            s.reconfig.tree_depth for s in net.switches.values()
        )
        assert max_tree <= 2 * max_bfs  # near-BFS in practice


class TestFlappingLink:
    def test_flapping_does_not_livelock_network(self):
        """A link that flaps rapidly triggers a bounded number of
        reconfigurations thanks to the skeptic."""
        net = converged_line(3)
        link = net.link_between("s0", "s1")
        completions_before = sum(
            s.reconfig.stats.completions for s in net.switches.values()
        )
        # Flap 10 times over 40 ms.
        for i in range(10):
            net.sim.schedule(i * 4_000.0, link.fail)
            net.sim.schedule(i * 4_000.0 + 2_000.0, link.restore)
        net.run(120_000)
        completions_after = sum(
            s.reconfig.stats.completions for s in net.switches.values()
        )
        # Without the skeptic each flap would force 2 network-wide
        # reconfigurations (~60 completions over 3 switches); the skeptic
        # compresses the burst into a handful.
        assert completions_after - completions_before <= 24
        # And the network ends up consistent once things settle.
        net.run_until(net.fully_reconfigured, timeout_us=2_000_000)
