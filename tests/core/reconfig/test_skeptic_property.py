"""Property test: no flap train can beat the skeptic's hold-downs.

Section 2's claim is quantitative at heart: escalating probations make
the number of *published* verdict changes logarithmic in time, no
matter how adversarially the link flaps.  Hypothesis searches the space
of flap trains (failure / recovery / tick sequences with arbitrary
spacing) for one that publishes more changes than
``max_verdict_changes`` allows.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reconfig.skeptic import Skeptic
from repro.faults import max_verdict_changes

BASE_WAIT_US = 2_000.0
MAX_LEVEL = 6
DECAY_US = 500_000.0

# One adversarial move: wait dt, then poke the skeptic somehow.  The
# adversary controls timing to the microsecond, including ticking at
# exactly a probation boundary and failing immediately after.
moves = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=50_000.0,
                  allow_nan=False, allow_infinity=False),
        st.sampled_from(["fail", "recover", "tick"]),
    ),
    min_size=1,
    max_size=200,
)


def drive(skeptic: Skeptic, train) -> float:
    now = 0.0
    for dt, action in train:
        now += dt
        # The owner always ticks before delivering a report, like the
        # monitor does; this lets probations complete on time.
        skeptic.tick(now)
        if action == "fail":
            skeptic.report_failure(now)
        elif action == "recover":
            skeptic.report_recovery(now)
    skeptic.tick(now)
    return now


@settings(max_examples=300, deadline=None)
@given(train=moves)
def test_verdict_changes_bounded_under_any_flap_train(train):
    skeptic = Skeptic(
        base_wait_us=BASE_WAIT_US,
        max_level=MAX_LEVEL,
        decay_interval_us=DECAY_US,
    )
    duration = drive(skeptic, train)
    bound = max_verdict_changes(duration, BASE_WAIT_US, MAX_LEVEL, DECAY_US)
    assert len(skeptic.verdict_changes) <= bound, (
        f"{len(skeptic.verdict_changes)} verdict changes in {duration}us "
        f"beats bound {bound}"
    )


@settings(max_examples=100, deadline=None)
@given(train=moves, data=st.data())
def test_probation_always_escalates_after_probation_failure(train, data):
    """Whatever history came before, failing during probation must not
    shorten the next probation (monotone hold-downs, capped)."""
    skeptic = Skeptic(base_wait_us=BASE_WAIT_US, max_level=MAX_LEVEL,
                      decay_interval_us=0.0)  # no decay: pure escalation
    now = drive(skeptic, train)
    before = skeptic.current_wait()
    skeptic.report_recovery(now)          # ensure we can be in probation
    skeptic.report_failure(now + 1.0)     # flap inside probation
    assert skeptic.current_wait() >= before
    assert skeptic.current_wait() <= BASE_WAIT_US * 2**MAX_LEVEL


def test_worst_case_periodic_flapper_stays_under_bound():
    """The canonical adversary: recover instantly, fail the instant the
    probation promotes the link.  This maximizes published changes."""
    skeptic = Skeptic(base_wait_us=BASE_WAIT_US, max_level=MAX_LEVEL,
                      decay_interval_us=0.0)
    now = 0.0
    skeptic.report_failure(now)
    for _ in range(40):
        skeptic.report_recovery(now)
        now += skeptic.current_wait()
        skeptic.tick(now)          # promotes to WORKING
        skeptic.report_failure(now)  # immediately kill it again
    bound = max_verdict_changes(now, BASE_WAIT_US, MAX_LEVEL)
    assert len(skeptic.verdict_changes) <= bound
