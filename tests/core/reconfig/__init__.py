"""Test package."""
