"""Event-driven switch behaviour observed through small networks."""

import pytest

from repro._types import host_id, switch_id
from repro.core.reconfig.skeptic import LinkVerdict
from repro.net.cell import TrafficClass
from repro.net.packet import Packet
from tests.conftest import converged_line, line_with_hosts


class TestDataPath:
    def test_cut_through_latency_lightly_loaded(self, small_net):
        """E14 (network flavour): a single cell crosses each switch in a
        couple of microseconds when nothing contends."""
        net = small_net
        circuit = net.setup_circuit("h0", "h1")
        net.host("h0").send_packet(
            circuit.vc,
            Packet(source=host_id(0), destination=host_id(1), payload=b"f" * 40),
        )
        net.run(50_000)
        [packet] = net.host("h1").delivered
        # 3 switches x (~slot + control) + 4 links' serialization+latency:
        # generous bound of 30 us; the point is microseconds, not millis.
        assert packet.latency < 30.0

    def test_credit_accounting_balances_after_quiescence(self, small_net):
        net = small_net
        circuit = net.setup_circuit("h0", "h1")
        net.host("h0").send_packet(
            circuit.vc,
            Packet(source=host_id(0), destination=host_id(1), payload=b"q" * 960),
        )
        net.run(100_000)
        # All cells delivered; every upstream balance restored to its
        # allocation; every downstream buffer empty.
        assert len(net.host("h1").delivered) == 1
        for switch in net.switches.values():
            for card in switch.cards:
                for vc, upstream in card.upstream.items():
                    assert upstream.balance == upstream.allocation
                for vc, downstream in card.downstream.items():
                    assert downstream.occupied == 0
        sender = net.host("h0").senders[circuit.vc]
        assert sender.upstream.balance == sender.upstream.allocation

    def test_no_cell_loss_under_sustained_load(self, small_net):
        net = small_net
        circuit = net.setup_circuit("h0", "h1")
        for _ in range(20):
            net.host("h0").send_packet(
                circuit.vc,
                Packet(source=host_id(0), destination=host_id(1), payload=b"z" * 480),
            )
        net.run(300_000)
        assert len(net.host("h1").delivered) == 20
        assert net.total_cells_dropped() == 0
        assert net.host("h1").reassembly_errors == 0

    def test_per_output_stats_populated(self, small_net):
        net = small_net
        circuit = net.setup_circuit("h0", "h1")
        net.host("h0").send_packet(
            circuit.vc,
            Packet(source=host_id(0), destination=host_id(1), payload=b"s" * 96),
        )
        net.run(50_000)
        s1 = net.switch("s1")
        assert s1.stats.cells_forwarded >= 2
        assert sum(s1.stats.per_output_forwarded.values()) == s1.stats.cells_forwarded


class TestGuaranteedPath:
    def test_reservation_installs_schedule(self, small_net):
        net = small_net
        circuit, reservation = net.reserve_bandwidth("h0", "h1", 4)
        net.run(5_000)
        for switch_ref in ("s0", "s1", "s2"):
            schedule = net.switch(switch_ref).frame_schedule
            assert schedule.total_reserved() == 4

    def test_guaranteed_cells_bypass_credits(self, small_net):
        net = small_net
        circuit, _ = net.reserve_bandwidth("h0", "h1", 4)
        net.run(2_000)
        net.host("h0").send_raw_cells(circuit.vc, 50)
        net.run(200_000)
        assert net.host("h1").cells_received == 50
        # No credit state was created for the guaranteed circuit.
        for switch in net.switches.values():
            for card in switch.cards:
                assert circuit.vc not in card.upstream
                assert circuit.vc not in card.downstream

    def test_release_restores_schedule(self, small_net):
        net = small_net
        circuit, reservation = net.reserve_bandwidth("h0", "h1", 4)
        net.run(5_000)
        for switch_ref, in_port, out_port in [
            (str(s), i, o) for (s, i, o) in reservation.switch_hops
        ]:
            net.switch(switch_ref).remove_reservation(in_port, out_port, 4)
        for switch_ref in ("s0", "s1", "s2"):
            assert net.switch(switch_ref).frame_schedule.total_reserved() == 0


class TestControlPlane:
    def test_reconfig_ports_exclude_host_links(self, small_net):
        s0 = small_net.switch("s0")
        ports = s0.reconfig_ports()
        for port_index in ports:
            neighbor = s0.cards[port_index].monitor.neighbor
            assert neighbor[0].is_switch

    def test_local_edges_include_host_links(self, small_net):
        s0 = small_net.switch("s0")
        edges = s0.local_edges()
        host_edges = [
            e for e in edges if any(n.is_host for (n, _) in e)
        ]
        assert len(host_edges) == 1

    def test_dead_port_excluded_from_reconfig_ports(self):
        net = converged_line(3)
        s1 = net.switch("s1")
        before = len(s1.reconfig_ports())
        net.fail_link("s1", "s2")
        net.run_until(
            lambda: len(s1.reconfig_ports()) == before - 1,
            timeout_us=100_000,
        )

    def test_buffered_cells_reported(self, small_net):
        assert small_net.switch("s1").buffered_cells() == 0
