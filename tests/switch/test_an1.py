"""Tests for the AN1 packet switch and network."""

import pytest

from repro._types import host_id, switch_id
from repro.net.packet import Packet
from repro.net.topology import Topology
from repro.switch.an1 import An1Config, An1Network


def fast_an1_config(**overrides):
    defaults = dict(
        ping_interval_us=500.0,
        ack_timeout_us=200.0,
        miss_threshold=2,
        skeptic_base_wait_us=2_000.0,
        skeptic_max_level=4,
        boot_reconfig_delay_us=1_500.0,
        reconfig_watchdog_us=50_000.0,
    )
    defaults.update(overrides)
    return An1Config(**defaults)


def hosted_grid(seed=5, **overrides):
    topo = Topology.grid(2, 3)
    topo.add_host(0)
    topo.add_host(1)
    topo.connect("h0", "s0", port_a=0)
    topo.connect("h1", "s5", port_a=0)
    net = An1Network(topo, seed=seed, config=fast_an1_config(**overrides))
    net.start()
    net.run_until_converged(timeout_us=500_000)
    return net


class TestAn1DataPath:
    def test_packets_delivered_whole(self):
        net = hosted_grid()
        h0 = net.hosts[host_id(0)]
        h1 = net.hosts[host_id(1)]
        for _ in range(5):
            h0.send_packet(
                Packet(source=host_id(0), destination=host_id(1), size=1500)
            )
        net.run(100_000)
        assert len(h1.delivered) == 5
        assert all(p.size == 1500 for p in h1.delivered)

    def test_latency_scales_with_hops_and_size(self):
        """Store-and-forward-ish serialization at 100 Mb/s: a 1500-byte
        packet costs ~120 us per hop."""
        net = hosted_grid()
        h0 = net.hosts[host_id(0)]
        h1 = net.hosts[host_id(1)]
        h0.send_packet(
            Packet(source=host_id(0), destination=host_id(1), size=1500)
        )
        net.run(100_000)
        latency = h1.delivered[0].latency
        per_hop = 1500 * 8 / 100e6 * 1e6  # ~120 us
        # Path h0-s0-...-s5-h1 has >= 4 serializations.
        assert 3 * per_hop < latency < 12 * per_hop

    def test_fifo_overflow_drops(self):
        net = hosted_grid(fifo_packets=2)
        h0 = net.hosts[host_id(0)]
        for _ in range(30):
            h0.send_packet(
                Packet(source=host_id(0), destination=host_id(1), size=1500)
            )
        net.run(200_000)
        total_dropped = sum(
            s.packets_dropped_overflow for s in net.switches.values()
        )
        # The first switch's FIFO (2 deep) cannot absorb a 30-packet
        # burst arriving at link rate while draining at link rate --
        # drops only happen transiently; at equal in/out rates the FIFO
        # may keep up, so simply assert accounting consistency.
        delivered = len(net.hosts[host_id(1)].delivered)
        assert delivered + total_dropped + net.buffered_packets() <= 30
        assert delivered > 0

    def test_unroutable_packet_counted(self):
        net = hosted_grid()
        h0 = net.hosts[host_id(0)]
        h0.send_packet(
            Packet(source=host_id(0), destination=host_id(42), size=100)
        )
        net.run(50_000)
        dropped = sum(
            s.packets_dropped_no_route for s in net.switches.values()
        )
        assert dropped == 1


class TestAn1Reconfiguration:
    def test_control_plane_shared_with_an2(self):
        net = hosted_grid()
        views = {s.reconfig.view for s in net.switches.values()}
        assert len(views) == 1
        assert next(iter(views)) == net.topology.view()

    def test_packets_in_transit_dropped_on_reconfig(self):
        """Section 2: "all packets in transit are dropped when a
        reconfiguration begins".

        Two senders share one trunk so switch FIFOs hold standing
        queues when the reconfiguration hits.
        """
        topo = Topology.line(2)
        topo.add_host(0)
        topo.add_host(1)
        topo.add_host(2)
        topo.connect("h0", "s0", port_a=0)
        topo.connect("h2", "s0", port_a=0)
        topo.connect("h1", "s1", port_a=0)
        net = An1Network(topo, seed=6, config=fast_an1_config())
        net.start()
        net.run_until_converged(timeout_us=500_000)
        for sender in (host_id(0), host_id(2)):
            for _ in range(15):
                net.hosts[sender].send_packet(
                    Packet(source=sender, destination=host_id(1), size=1500)
                )
        # Both 100 Mb/s host links feed one 100 Mb/s trunk: FIFOs at s0
        # hold a standing queue after a few serializations.
        net.run(1_000.0)
        assert net.buffered_packets() > 0
        net.switches[switch_id(0)].reconfig.trigger()
        net.run(500_000)
        assert net.total_dropped_on_reconfig() > 0
        delivered = len(net.hosts[host_id(1)].delivered)
        assert delivered < 30  # the drop is user-visible in AN1

    def test_drop_behaviour_can_be_disabled(self):
        net = hosted_grid(drop_packets_on_reconfig=False)
        h0 = net.hosts[host_id(0)]
        for _ in range(20):
            h0.send_packet(
                Packet(source=host_id(0), destination=host_id(1), size=1500)
            )
        net.run(400.0)
        net.switches[switch_id(3)].reconfig.trigger()
        net.run(400_000)
        assert net.total_dropped_on_reconfig() == 0
        assert len(net.hosts[host_id(1)].delivered) == 20

    def test_link_failure_reconfigures_and_recovers_routing(self):
        net = hosted_grid()
        h0 = net.hosts[host_id(0)]
        h1 = net.hosts[host_id(1)]
        # Fail a link, wait for the new view, then send.
        from repro.net.link import Link

        for edge, link in net.links.items():
            (na, _), (nb, _) = edge
            if {na, nb} == {switch_id(1), switch_id(4)}:
                link.fail()
                break
        net.run(100_000)
        h0.send_packet(
            Packet(source=host_id(0), destination=host_id(1), size=500)
        )
        net.run(100_000)
        assert len(h1.delivered) == 1
