"""Tests for routing tables and the crossbar wrapper."""

import random

from repro._types import host_id
from repro.core.matching.pim import ParallelIterativeMatcher
from repro.core.routing.signaling import SetupRequest
from repro.net.cell import Cell
from repro.switch.crossbar import Crossbar
from repro.switch.routing_table import RoutingTable


def request(vc=20):
    return SetupRequest(vc=vc, source=host_id(0), destination=host_id(1))


class TestRoutingTable:
    def test_install_and_lookup(self):
        table = RoutingTable()
        entry = table.install(20, 3, request(), now=5.0)
        assert table.lookup(20) is entry
        assert entry.out_port == 3
        assert entry.installed_at == 5.0
        assert 20 in table

    def test_remove(self):
        table = RoutingTable()
        table.install(20, 3, request(), now=0.0)
        removed = table.remove(20)
        assert removed is not None
        assert table.lookup(20) is None
        assert table.remove(20) is None

    def test_pending_buffering_and_flush(self):
        table = RoutingTable()
        cells = [Cell(vc=20) for _ in range(3)]
        for cell in cells:
            assert table.buffer_pending(20, cell)
        assert table.pending_count(20) == 3
        assert table.take_pending(20) == cells
        assert table.pending_count(20) == 0

    def test_pending_cap_drops(self):
        table = RoutingTable(pending_cap=2)
        assert table.buffer_pending(20, Cell(vc=20))
        assert table.buffer_pending(20, Cell(vc=20))
        assert not table.buffer_pending(20, Cell(vc=20))
        assert table.pending_drops == 1

    def test_remove_clears_pending(self):
        table = RoutingTable()
        table.install(20, 1, request(), now=0.0)
        table.buffer_pending(20, Cell(vc=20))
        table.remove(20)
        assert table.take_pending(20) == []

    def test_entries_listing(self):
        table = RoutingTable()
        table.install(20, 1, request(20), now=0.0)
        table.install(21, 2, request(21), now=0.0)
        assert {e.vc for e in table.entries()} == {20, 21}


class TestCrossbar:
    def test_schedule_counts_slots_and_iterations(self):
        crossbar = Crossbar(4, ParallelIterativeMatcher(4, 4, random.Random(0)))
        result = crossbar.schedule([{1}, set(), set(), set()])
        assert result.matching == {0: 1}
        assert crossbar.slots == 1
        assert crossbar.iterations_to_maximal.count == 1

    def test_utilization(self):
        crossbar = Crossbar(2, ParallelIterativeMatcher(2, 2, random.Random(0)))
        crossbar.schedule([{0}, {1}])
        crossbar.note_transfer()
        crossbar.note_transfer(guaranteed=True)
        assert crossbar.cells_transferred == 2
        assert crossbar.guaranteed_transferred == 1
        assert crossbar.utilization() == 1.0
