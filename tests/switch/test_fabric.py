"""Tests for the slot-synchronous fabric simulators."""

import random

import pytest

from repro.core.matching.fifo import FifoScheduler
from repro.core.matching.pim import ParallelIterativeMatcher
from repro.switch.fabric import (
    FifoFabric,
    OutputQueueFabric,
    VoqFabric,
    run_fabric,
)
from repro.traffic.arrivals import BernoulliUniform, Permutation


def make_voq(n=4, iterations=4, seed=0, **kwargs):
    return VoqFabric(
        n, ParallelIterativeMatcher(n, iterations, random.Random(seed)), **kwargs
    )


class TestVoqFabric:
    def test_cells_conserved(self):
        fabric = make_voq()
        traffic = BernoulliUniform(4, 0.5, random.Random(1))
        metrics = run_fabric(fabric, traffic, 2000)
        assert (
            metrics.cells_offered
            == metrics.cells_delivered + fabric.total_backlog() + metrics.cells_dropped
        )

    def test_single_flow_full_rate(self):
        fabric = make_voq()
        for slot in range(100):
            fabric.offer(0, 1, slot)
            fabric.step(slot)
        assert fabric.metrics.cells_delivered == 100
        assert fabric.metrics.latency.maximum == 0

    def test_permutation_traffic_no_loss_of_throughput(self):
        fabric = make_voq(n=8, iterations=1, seed=3)
        traffic = Permutation(8, 1.0, rng=random.Random(2))
        metrics = run_fabric(fabric, traffic, 500, warmup_slots=50)
        assert metrics.utilization(8) > 0.99

    def test_buffer_capacity_drops(self):
        fabric = make_voq(buffer_capacity=2)
        fabric.offer(0, 1, 0)
        fabric.offer(0, 2, 0)
        assert not fabric.offer(0, 3, 0)
        assert fabric.metrics.cells_dropped == 1

    def test_latency_counts_waiting_slots(self):
        fabric = make_voq()
        # Two cells at the same input for the same output: second waits.
        fabric.offer(0, 1, 0)
        fabric.offer(0, 1, 0)
        fabric.step(0)
        fabric.step(1)
        assert sorted(fabric.metrics.latency.samples()) == [0, 1]

    def test_iteration_stats_recorded(self):
        fabric = make_voq(n=8)
        traffic = BernoulliUniform(8, 0.9, random.Random(4))
        metrics = run_fabric(fabric, traffic, 300)
        assert metrics.iterations_to_maximal.count > 0
        assert metrics.iterations_to_maximal.maximum <= 4 * 8

    def test_frame_schedule_overlay_guaranteed_first(self):
        schedule = [{0: 1}, {}]  # slot 0 of every 2 reserved for 0->1
        fabric = VoqFabric(
            4,
            ParallelIterativeMatcher(4, 4, random.Random(0)),
            frame_schedule=schedule,
        )
        fabric.offer_guaranteed(0, 1, 0)
        fabric.offer(2, 1, 0)  # best-effort for the same output
        fabric.step(0)  # guaranteed wins the reserved slot
        assert fabric.metrics.delivered_per_pair.get((0, 1)) == 1
        fabric.step(1)  # best-effort gets the next slot
        assert fabric.metrics.delivered_per_pair.get((2, 1)) == 1

    def test_unused_reserved_slot_available_to_best_effort(self):
        schedule = [{0: 1}]
        fabric = VoqFabric(
            4,
            ParallelIterativeMatcher(4, 4, random.Random(0)),
            frame_schedule=schedule,
        )
        fabric.offer(2, 1, 0)  # no guaranteed cell present
        fabric.step(0)
        assert fabric.metrics.delivered_per_pair.get((2, 1)) == 1


class TestFifoFabric:
    def test_head_of_line_blocking_observable(self):
        fabric = FifoFabric(4, FifoScheduler(4, random.Random(0)))
        # Input 0: head wants output 1; behind it a cell for output 2.
        fabric.offer(0, 1, 0)
        fabric.offer(0, 2, 0)
        # Input 1 also wants output 1 and wins sometimes; run one slot
        # where input 1 wins: then input 0 is fully blocked even though
        # output 2 is idle.
        fabric.offer(1, 1, 0)
        result = fabric.step(0)
        delivered = fabric.metrics.cells_delivered
        assert delivered == 1  # only one of the two head cells for output 1
        assert fabric.metrics.delivered_per_pair.get((0, 2)) is None

    def test_conservation(self):
        fabric = FifoFabric(4, FifoScheduler(4, random.Random(1)))
        traffic = BernoulliUniform(4, 0.9, random.Random(2))
        metrics = run_fabric(fabric, traffic, 1000)
        assert (
            metrics.cells_offered
            == metrics.cells_delivered + fabric.total_backlog()
        )

    def test_buffer_capacity(self):
        fabric = FifoFabric(4, FifoScheduler(4), buffer_capacity=1)
        fabric.offer(0, 1, 0)
        assert not fabric.offer(0, 2, 0)


class TestOutputQueueFabric:
    def test_full_speedup_never_input_blocks(self):
        fabric = OutputQueueFabric(4)
        for i in range(4):
            fabric.offer(i, 0, 0)  # all to one output
        fabric.step(0)
        # All 4 crossed the fabric; one departed.
        assert fabric.metrics.cells_delivered == 1
        assert len(fabric.output_queues[0]) == 3

    def test_speedup_one_transfers_one_per_slot(self):
        fabric = OutputQueueFabric(4, speedup=1)
        for i in range(3):
            fabric.offer(i, 0, 0)
        fabric.step(0)
        assert len(fabric.output_queues[0]) == 0  # 1 moved, 1 departed...
        # speedup=1: one cell crossed, then departed; two still waiting.
        assert fabric.metrics.cells_delivered == 1
        assert fabric.total_backlog() == 2

    def test_oldest_first_service(self):
        fabric = OutputQueueFabric(2)
        fabric.offer(0, 0, 0)
        fabric.step(0)
        fabric.offer(1, 0, 1)
        fabric.step(1)
        pairs = list(fabric.metrics.delivered_per_pair)
        assert (0, 0) in pairs and (1, 0) in pairs
        assert fabric.metrics.latency.maximum <= 1

    def test_capacity_drops(self):
        fabric = OutputQueueFabric(2, buffer_capacity=1)
        fabric.offer(0, 0, 0)
        fabric.offer(1, 0, 0)
        fabric.step(0)
        assert fabric.metrics.cells_dropped == 1

    def test_speedup_validation(self):
        with pytest.raises(ValueError):
            OutputQueueFabric(4, speedup=0)


class TestRunner:
    def test_warmup_excluded_from_metrics(self):
        fabric = make_voq()
        traffic = BernoulliUniform(4, 0.5, random.Random(5))
        metrics = run_fabric(fabric, traffic, 100, warmup_slots=50)
        assert metrics.slots == 100

    def test_on_slot_hook_called(self):
        fabric = make_voq()
        traffic = BernoulliUniform(4, 0.1, random.Random(6))
        seen = []
        run_fabric(fabric, traffic, 10, on_slot=seen.append)
        assert seen == list(range(10))
