"""Tests for per-VC input buffering and guaranteed queues."""

from repro.net.cell import Cell
from repro.switch.buffers import GuaranteedQueues, VcQueues


def cell(vc):
    return Cell(vc=vc)


def always(out_port, vc):
    return True


def never(out_port, vc):
    return False


class TestVcQueues:
    def test_push_pop_fifo_within_vc(self):
        queues = VcQueues()
        first, second = cell(20), cell(20)
        queues.push(1, 20, first)
        queues.push(1, 20, second)
        assert queues.pop(1, always) == (20, first)
        assert queues.pop(1, always) == (20, second)
        assert queues.pop(1, always) is None

    def test_round_robin_between_vcs(self):
        queues = VcQueues()
        for _ in range(2):
            queues.push(1, 20, cell(20))
            queues.push(1, 21, cell(21))
        served = [queues.pop(1, always)[0] for _ in range(4)]
        assert served == [20, 21, 20, 21]

    def test_blocked_vc_does_not_block_siblings(self):
        """Section 5: "if one virtual circuit is blocked, other virtual
        circuits passing over the same link are not affected"."""
        def only_21(out_port, vc):
            return vc == 21

        queues = VcQueues()
        blocked = cell(20)
        open_cell = cell(21)
        queues.push(1, 20, blocked)
        queues.push(1, 21, open_cell)
        vc, popped = queues.pop(1, only_21)
        assert vc == 21 and popped is open_cell

    def test_eligible_outputs_respects_can_send(self):
        queues = VcQueues()
        queues.push(1, 20, cell(20))
        queues.push(3, 21, cell(21))
        assert queues.eligible_outputs(always) == {1, 3}
        assert queues.eligible_outputs(never) == set()

        def only_output_3(out_port, vc):
            return out_port == 3

        assert queues.eligible_outputs(only_output_3) == {3}

    def test_occupancy_tracking(self):
        queues = VcQueues()
        assert not queues.has_backlog()
        queues.push(0, 20, cell(20))
        queues.push(1, 21, cell(21))
        assert queues.occupancy == 2
        assert queues.occupancy_for(0) == 1
        assert queues.peak_occupancy == 2
        queues.pop(0, always)
        assert queues.occupancy == 1
        assert queues.peak_occupancy == 2

    def test_drain_vc_removes_everything(self):
        queues = VcQueues()
        queues.push(1, 20, cell(20))
        queues.push(1, 20, cell(20))
        queues.push(1, 21, cell(21))
        drained = queues.drain_vc(20)
        assert len(drained) == 2
        assert queues.occupancy == 1
        assert queues.queued_vcs(1) == [21]
        assert queues.drain_vc(20) == []

    def test_queued_vcs_excludes_empty(self):
        queues = VcQueues()
        queues.push(1, 20, cell(20))
        queues.pop(1, always)
        assert queues.queued_vcs(1) == []


class TestGuaranteedQueues:
    def test_fifo_per_output(self):
        queues = GuaranteedQueues()
        first, second = cell(30), cell(30)
        queues.push(2, first)
        queues.push(2, second)
        assert queues.pop(2) is first
        assert queues.pop(2) is second
        assert queues.pop(2) is None

    def test_occupancy_and_peak(self):
        queues = GuaranteedQueues()
        queues.push(0, cell(30))
        queues.push(1, cell(31))
        assert queues.occupancy == 2
        assert queues.has_backlog()
        queues.pop(0)
        assert queues.occupancy == 1
        assert queues.peak_occupancy == 2
