"""Test package."""
