"""Nested-frame scheduling inside the event-driven switch."""

import pytest

from repro.core.guaranteed.nested_frames import NestedFrameSchedule
from repro.net.host import HostConfig
from repro.net.network import Network
from repro.net.topology import Topology
from repro.switch.switch import SwitchConfig


def nested_net(seed=55):
    topo = Topology.line(2)
    topo.add_host(0)
    topo.add_host(1)
    topo.connect("h0", "s0", port_a=0, bps=622_000_000)
    topo.connect("h1", "s1", port_a=0, bps=622_000_000)
    net = Network(
        topo,
        seed=seed,
        switch_config=SwitchConfig(
            frame_slots=64,
            nested_subframe_slots=8,
            boot_reconfig_delay_us=1_500.0,
            ping_interval_us=500.0,
            ack_timeout_us=200.0,
        ),
        host_config=HostConfig(frame_slots=64),
    )
    net.start()
    net.run_until_converged(timeout_us=500_000)
    return net


def test_switch_uses_nested_schedule():
    net = nested_net()
    for switch in net.switches.values():
        assert isinstance(switch.frame_schedule, NestedFrameSchedule)


def test_reservation_spreads_across_subframes():
    net = nested_net()
    circuit, _ = net.reserve_bandwidth("h0", "h1", 8)
    net.run(2_000)
    schedule = net.switch("s0").frame_schedule
    assert schedule.total_reserved() == 8
    # One cell in every 8-slot subframe.
    in_port = net.switch("s0")._vc_in_port[circuit.vc]
    entry = net.switch("s0").cards[in_port].routing_table.lookup(circuit.vc)
    gap = schedule.max_gap_slots(in_port, entry.out_port)
    assert gap <= 2 * 8


def test_nested_cbr_traffic_flows_with_low_jitter():
    net = nested_net()
    circuit, _ = net.reserve_bandwidth("h0", "h1", 8)
    net.run(2_000)
    net.host("h0").send_raw_cells(circuit.vc, 64)
    net.run_until(
        lambda: net.host("h1").cells_received >= 64, timeout_us=2_000_000
    )
    latency = net.host("h1").cell_latency[circuit.vc]
    # Jitter bounded by ~2 subframes per switch (2 switches).
    subframe_us = 8 * 0.6817
    assert latency.maximum - latency.minimum <= 2 * 2 * subframe_us + 2.0


def test_remove_reservation_nested():
    net = nested_net()
    circuit, reservation = net.reserve_bandwidth("h0", "h1", 8)
    net.run(2_000)
    for switch_id_, in_port, out_port in reservation.switch_hops:
        net.switches[switch_id_].remove_reservation(in_port, out_port, 8)
    for switch_id_, _, _ in reservation.switch_hops:
        assert net.switches[switch_id_].frame_schedule.total_reserved() == 0


def test_subframe_must_divide_frame_config():
    topo = Topology.line(2)
    from repro.sim.random import RandomStreams
    from repro._types import switch_id as sid
    from repro.switch.switch import AN2Switch
    from repro.sim.kernel import Simulator

    with pytest.raises(ValueError):
        AN2Switch(
            Simulator(),
            sid(0),
            RandomStreams(0),
            config=SwitchConfig(frame_slots=64, nested_subframe_slots=7),
            n_ports=4,
        )
