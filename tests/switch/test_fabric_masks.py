"""Tests for the VoqFabric incremental bitmask state and fast paths.

``VoqFabric`` maintains three pieces of incremental state so that a
bitmask scheduler never has to rebuild request sets from the queues:
per-input ``request_masks``, the transposed ``col_masks``, and the
``union_mask`` of outputs with any backlog.  These tests pin the
invariant (masks always mirror queue occupancy), the strict-RNG
end-to-end equality between a bitmask-driven and a reference-driven
fabric, the ``offer_batch`` fast path, occupancy tracking in both
capacity modes, and the ``run_fabric`` warmup semantics.
"""

import random

from repro.core.matching.bitmask import BitmaskIslip, BitmaskPim
from repro.core.matching.islip import IslipMatcher
from repro.core.matching.pim import ParallelIterativeMatcher
from repro.switch.fabric import VoqFabric, run_fabric
from repro.traffic.arrivals import BernoulliUniform


def assert_masks_mirror_queues(fabric):
    n = fabric.n_ports
    for i in range(n):
        expected = 0
        for o, queue in fabric.queues[i].items():
            if queue:
                expected |= 1 << o
        assert fabric.request_masks[i] == expected, f"input {i}"
    union = 0
    for o in range(n):
        expected = 0
        for i in range(n):
            queue = fabric.queues[i].get(o)
            if queue:
                expected |= 1 << i
        assert fabric.col_masks[o] == expected, f"output {o}"
        if expected:
            union |= 1 << o
    assert fabric.union_mask == union


class TestMaskInvariants:
    def test_masks_track_queues_through_run(self):
        fabric = VoqFabric(8, BitmaskPim(8, rng=random.Random(0)))
        traffic = BernoulliUniform(8, 0.8, random.Random(1))
        for slot in range(300):
            for i, o in traffic.arrivals(slot):
                fabric.offer(i, o, slot)
            fabric.step(slot)
            if slot % 25 == 0:
                assert_masks_mirror_queues(fabric)
        assert_masks_mirror_queues(fabric)

    def test_masks_track_queues_with_reference_scheduler(self):
        # The incremental state is maintained regardless of which
        # scheduler consumes it.
        fabric = VoqFabric(4, ParallelIterativeMatcher(4, rng=random.Random(0)))
        traffic = BernoulliUniform(4, 0.9, random.Random(2))
        for slot in range(200):
            for i, o in traffic.arrivals(slot):
                fabric.offer(i, o, slot)
            fabric.step(slot)
        assert_masks_mirror_queues(fabric)

    def test_masks_track_queues_with_drops(self):
        fabric = VoqFabric(
            4, BitmaskPim(4, rng=random.Random(0)), buffer_capacity=3
        )
        traffic = BernoulliUniform(4, 1.0, random.Random(3))
        for slot in range(200):
            for i, o in traffic.arrivals(slot):
                fabric.offer(i, o, slot)
            fabric.step(slot)
            assert_masks_mirror_queues(fabric)
        assert fabric.metrics.cells_dropped > 0

    def test_drained_fabric_clears_all_masks(self):
        fabric = VoqFabric(4, BitmaskPim(4, rng=random.Random(0)))
        for slot in range(20):
            if slot < 5:
                fabric.offer(0, 1, slot)
                fabric.offer(2, 1, slot)
            fabric.step(slot)
        assert fabric.total_backlog() == 0
        assert fabric.request_masks == [0, 0, 0, 0]
        assert fabric.col_masks == [0, 0, 0, 0]
        assert fabric.union_mask == 0


class TestStrictEndToEnd:
    def test_bitmask_fabric_equals_reference_fabric(self):
        """Strict-RNG bitmask run is cell-for-cell the reference run."""
        n = 16
        ref_fabric = VoqFabric(
            n, ParallelIterativeMatcher(n, rng=random.Random(7))
        )
        bit_fabric = VoqFabric(
            n, BitmaskPim(n, rng=random.Random(7), strict_rng=True)
        )
        ref = run_fabric(ref_fabric, BernoulliUniform(n, 0.95, random.Random(5)), 800)
        bit = run_fabric(bit_fabric, BernoulliUniform(n, 0.95, random.Random(5)), 800)
        assert bit.cells_delivered == ref.cells_delivered
        assert bit.delivered_per_pair == ref.delivered_per_pair
        assert sorted(bit.latency.samples()) == sorted(ref.latency.samples())

    def test_bitmask_islip_fabric_equals_reference_fabric(self):
        n = 8
        ref_fabric = VoqFabric(n, IslipMatcher(n))
        bit_fabric = VoqFabric(n, BitmaskIslip(n))
        ref = run_fabric(ref_fabric, BernoulliUniform(n, 0.9, random.Random(6)), 800)
        bit = run_fabric(bit_fabric, BernoulliUniform(n, 0.9, random.Random(6)), 800)
        assert bit.cells_delivered == ref.cells_delivered
        assert bit.delivered_per_pair == ref.delivered_per_pair


class TestOfferBatch:
    def _drive(self, fabric, use_batch):
        traffic = BernoulliUniform(4, 0.9, random.Random(11))
        for slot in range(300):
            arrivals = traffic.arrivals(slot)
            if use_batch:
                fabric.offer_batch(arrivals, slot)
            else:
                for i, o in arrivals:
                    fabric.offer(i, o, slot)
            fabric.step(slot)
        return fabric

    def test_batch_equals_per_cell_unbounded(self):
        batched = self._drive(
            VoqFabric(4, BitmaskPim(4, rng=random.Random(1))), True
        )
        single = self._drive(
            VoqFabric(4, BitmaskPim(4, rng=random.Random(1))), False
        )
        assert batched.metrics.cells_offered == single.metrics.cells_offered
        assert batched.metrics.cells_delivered == single.metrics.cells_delivered
        assert (
            batched.metrics.delivered_per_pair
            == single.metrics.delivered_per_pair
        )
        assert_masks_mirror_queues(batched)

    def test_batch_equals_per_cell_with_capacity(self):
        # With a finite buffer, offer_batch must fall back to the
        # drop-aware per-cell path.
        batched = self._drive(
            VoqFabric(
                4, BitmaskPim(4, rng=random.Random(1)), buffer_capacity=5
            ),
            True,
        )
        single = self._drive(
            VoqFabric(
                4, BitmaskPim(4, rng=random.Random(1)), buffer_capacity=5
            ),
            False,
        )
        assert batched.metrics.cells_dropped == single.metrics.cells_dropped
        assert batched.metrics.cells_delivered == single.metrics.cells_delivered


class TestBacklogAccounting:
    def test_backlog_without_occupancy_tracking(self):
        fabric = VoqFabric(4, BitmaskPim(4, rng=random.Random(0)))
        assert not fabric._track_occupancy
        for _ in range(3):
            fabric.offer(0, 1, 0)
        fabric.offer(0, 2, 0)
        fabric.offer(3, 1, 0)
        assert fabric.backlog(0) == 4
        assert fabric.backlog(3) == 1
        assert fabric.total_backlog() == 5

    def test_backlog_with_occupancy_tracking(self):
        fabric = VoqFabric(
            4, BitmaskPim(4, rng=random.Random(0)), buffer_capacity=10
        )
        assert fabric._track_occupancy
        for _ in range(3):
            fabric.offer(0, 1, 0)
        fabric.offer(3, 1, 0)
        assert fabric.backlog(0) == 3
        assert fabric.total_backlog() == 4
        # Both inputs contend for output 1: exactly one delivery per slot.
        fabric.step(0)
        assert fabric.total_backlog() == 3


class _Burst:
    """Arrival process: a fixed burst at slot 0, then silence."""

    def __init__(self, cells):
        self._cells = list(cells)

    def arrivals(self, slot):
        return self._cells if slot == 0 else []


class TestWarmupSemantics:
    def test_pre_warmup_cell_delivered_post_warmup_counts_true_age(self):
        """Satellite: warmup resets metrics, not cell arrival stamps.

        Three cells for the same VOQ arrive at slot 0.  They drain one
        per slot (slots 0, 1, 2).  With ``warmup_slots=2`` the first two
        deliveries land in the discarded warmup metrics; the third is
        recorded post-warmup with its *true* age of 2 slots -- the
        arrival timestamp is not rebased at the warmup boundary.
        """
        fabric = VoqFabric(4, BitmaskPim(4, rng=random.Random(0)))
        metrics = run_fabric(
            fabric, _Burst([(0, 1), (0, 1), (0, 1)]), n_slots=5, warmup_slots=2
        )
        assert metrics.cells_delivered == 1
        assert metrics.latency.samples() == [2]

    def test_warmup_zero_counts_everything(self):
        fabric = VoqFabric(4, BitmaskPim(4, rng=random.Random(0)))
        metrics = run_fabric(
            fabric, _Burst([(0, 1), (0, 1), (0, 1)]), n_slots=5, warmup_slots=0
        )
        assert metrics.cells_delivered == 3
        assert sorted(metrics.latency.samples()) == [0, 1, 2]


class TestFrameScheduleWithBitmask:
    def test_guaranteed_overlay_wins_reserved_slot(self):
        schedule = [{0: 1}, {}]
        fabric = VoqFabric(
            4, BitmaskPim(4, rng=random.Random(0)), frame_schedule=schedule
        )
        fabric.offer_guaranteed(0, 1, 0)
        fabric.offer(2, 1, 0)
        result = fabric.step(0)
        assert result.matching[0] == 1
        assert 2 not in result.matching or result.matching[2] != 1
        assert fabric.metrics.cells_delivered == 1
        fabric.step(1)
        assert fabric.metrics.cells_delivered == 2
        assert_masks_mirror_queues(fabric)
