"""Nondeterminism-lint self-tests on fixture snippets."""

from __future__ import annotations

import sys
import textwrap
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "tools"))

import lint_determinism  # noqa: E402
from lint_determinism import lint_source  # noqa: E402

PROTOCOL = Path("src/repro/core/routing/example.py")
NEUTRAL = Path("src/repro/analysis/example.py")


def lint(snippet, path=PROTOCOL, **kwargs):
    return lint_source(textwrap.dedent(snippet), path, **kwargs)


def rules(findings, include_allowed=False):
    return [
        f.rule for f in findings if include_allowed or not f.allowed
    ]


# ----------------------------------------------------------------------
# module-random
# ----------------------------------------------------------------------
class TestModuleRandom:
    def test_module_level_draw_flagged(self):
        findings = lint(
            """
            import random
            x = random.choice([1, 2, 3])
            """,
            path=NEUTRAL,
        )
        assert rules(findings) == ["module-random"]

    def test_from_import_draw_flagged(self):
        findings = lint("from random import shuffle\n", path=NEUTRAL)
        assert rules(findings) == ["module-random"]

    def test_seeded_instance_allowed(self):
        findings = lint(
            """
            import random
            rng = random.Random(42)
            y = rng.random()
            """,
            path=NEUTRAL,
        )
        assert rules(findings) == []

    def test_fires_outside_protocol_paths(self):
        # Unlike the iteration rules, module-random applies everywhere.
        findings = lint(
            "import random\nz = random.random()\n",
            path=Path("src/repro/analysis/report.py"),
        )
        assert rules(findings) == ["module-random"]


# ----------------------------------------------------------------------
# set-iteration
# ----------------------------------------------------------------------
class TestSetIteration:
    def test_set_literal_flagged_in_protocol_code(self):
        findings = lint(
            """
            def f():
                for x in {1, 2, 3}:
                    print(x)
            """
        )
        assert rules(findings) == ["set-iteration"]

    def test_annotated_name_flagged(self):
        findings = lint(
            """
            from typing import Set
            def f(ports: Set[int]):
                for p in ports:
                    print(p)
            """
        )
        assert rules(findings) == ["set-iteration"]

    def test_sorted_silences(self):
        findings = lint(
            """
            def f(ports: set):
                for p in sorted(ports):
                    print(p)
            """
        )
        assert rules(findings) == []

    def test_not_flagged_outside_protocol_paths(self):
        findings = lint(
            """
            def f(ports: set):
                for p in ports:
                    print(p)
            """,
            path=NEUTRAL,
        )
        assert rules(findings) == []

    def test_order_insensitive_consumer_sanctioned(self):
        findings = lint(
            """
            def f(ports: set):
                return sum(p * 2 for p in ports)
            """
        )
        assert rules(findings) == []

    def test_pragma_marks_allowed(self):
        findings = lint(
            """
            def f(edges: set):
                for e in edges:  # det: allow(membership only)
                    if e:
                        return True
            """
        )
        assert rules(findings) == []
        assert rules(findings, include_allowed=True) == ["set-iteration"]
        (finding,) = lint(
            """
            def f(edges: set):
                for e in edges:  # det: allow(membership only)
                    if e:
                        return True
            """
        )
        assert finding.allowed
        assert "membership only" in finding.reason

    def test_preceding_line_pragma(self):
        findings = lint(
            """
            def f(edges: set):
                # det: allow(reported order never consumed)
                for e in edges:
                    print(e)
            """
        )
        assert rules(findings) == []


# ----------------------------------------------------------------------
# dict-iteration
# ----------------------------------------------------------------------
class TestDictIteration:
    def test_items_flagged_in_decision_code(self):
        findings = lint(
            """
            def f(table: dict):
                for k, v in table.items():
                    print(k, v)
            """
        )
        assert rules(findings) == ["dict-iteration"]

    def test_not_flagged_in_non_decision_protocol_code(self):
        # net/ is protocol (set rule) but not decision (dict rule) scope.
        findings = lint(
            """
            def f(table: dict):
                for k, v in table.items():
                    print(k, v)
            """,
            path=Path("src/repro/net/example.py"),
        )
        assert rules(findings) == []

    def test_sorted_items_silences(self):
        findings = lint(
            """
            def f(table: dict):
                for k, v in sorted(table.items()):
                    print(k, v)
            """
        )
        assert rules(findings) == []


# ----------------------------------------------------------------------
# id-ordering
# ----------------------------------------------------------------------
class TestIdOrdering:
    def test_sorted_key_id_flagged(self):
        findings = lint(
            "def f(xs):\n    return sorted(xs, key=id)\n", path=NEUTRAL
        )
        assert rules(findings) == ["id-ordering"]

    def test_sort_method_flagged(self):
        findings = lint(
            "def f(xs):\n    xs.sort(key=lambda o: id(o))\n", path=NEUTRAL
        )
        assert rules(findings) == ["id-ordering"]

    def test_plain_id_use_allowed(self):
        findings = lint("def f(x):\n    return id(x)\n", path=NEUTRAL)
        assert rules(findings) == []


# ----------------------------------------------------------------------
# the shipped tree must be clean
# ----------------------------------------------------------------------
class TestRepoClean:
    def test_src_repro_has_no_unallowed_findings(self):
        repo = Path(__file__).resolve().parents[2]
        findings = lint_determinism.lint_paths([repo / "src" / "repro"])
        blocking = [f for f in findings if not f.allowed]
        assert blocking == [], "\n".join(str(f) for f in blocking)

    def test_main_exit_codes(self, capsys):
        repo = Path(__file__).resolve().parents[2]
        assert (
            lint_determinism.main([str(repo / "src" / "repro")]) == 0
        )
        capsys.readouterr()
