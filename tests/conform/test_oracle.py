"""Differential-oracle tests: agreement, divergence detection, corpus."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro.conform.oracle as oracle
from repro.conform.oracle import (
    MATCHER_KINDS,
    Divergence,
    compare_matchers,
    compare_routing,
    matcher_sweep,
    routing_sweep,
)
from repro.core.matching.islip import IslipMatcher
from repro.switch.fabric import VoqFabric

CORPUS_PATH = Path(__file__).parent / "corpus.json"


# ----------------------------------------------------------------------
# agreement on the real implementations
# ----------------------------------------------------------------------
class TestAgreement:
    @pytest.mark.parametrize("kind", MATCHER_KINDS)
    def test_reference_and_bitmask_agree(self, kind):
        divergence, matchings_hash = compare_matchers(
            kind, n_ports=8, seed=7, pattern="bernoulli-0.6", n_slots=80
        )
        assert divergence is None
        assert len(matchings_hash) == 64

    def test_matchings_hash_is_seed_sensitive(self):
        _, h1 = compare_matchers("pim", 4, 1, "bernoulli-0.6", n_slots=40)
        _, h2 = compare_matchers("pim", 4, 2, "bernoulli-0.6", n_slots=40)
        assert h1 != h2

    def test_small_sweep_clean(self):
        divergences, records = matcher_sweep(
            seeds=[0, 1], sizes=(4,), n_slots=40
        )
        assert divergences == []
        assert len(records) == 2 * 1 * len(MATCHER_KINDS) * len(
            oracle.PATTERNS
        )
        assert all(r["agreed"] for r in records)

    def test_routing_clean(self):
        divergence, paths_hash = compare_routing(seed=3, n_switches=6)
        assert divergence is None
        assert len(paths_hash) == 64

    def test_routing_sweep_clean(self):
        divergences, records = routing_sweep(seeds=[0, 1], sizes=(5,))
        assert divergences == []
        assert all(r["agreed"] for r in records)


# ----------------------------------------------------------------------
# the oracle must actually detect divergence
# ----------------------------------------------------------------------
class _SabotagedIslip(IslipMatcher):
    """Drops the lowest-input match after a few clean slots."""

    def __init__(self, n_ports, iterations=3, break_after=5):
        super().__init__(n_ports, iterations)
        self._calls = 0
        self._break_after = break_after

    def match(self, requests, pre_matched=None):
        result = super().match(requests, pre_matched)
        self._calls += 1
        if self._calls > self._break_after and result.matching:
            del result.matching[min(result.matching)]
        return result


class TestDivergenceDetection:
    def test_broken_matcher_is_caught(self, monkeypatch):
        def sabotaged_pair(kind, n_ports, seed):
            assert kind == "islip"
            return (
                VoqFabric(n_ports, IslipMatcher(n_ports, iterations=3)),
                VoqFabric(n_ports, _SabotagedIslip(n_ports, iterations=3)),
            )

        monkeypatch.setattr(oracle, "_build_pair", sabotaged_pair)
        divergence, _ = compare_matchers(
            "islip", n_ports=8, seed=0, pattern="bernoulli-0.95", n_slots=80
        )
        assert isinstance(divergence, Divergence)
        assert divergence.kind == "matcher"
        assert divergence.pair == "islip"
        assert divergence.round >= 0
        assert divergence.port >= 0
        # The sabotage removes a grant, so the reference saw one where
        # the candidate has none.
        assert divergence.reference is not None
        assert divergence.candidate is None
        # The report must carry enough to reproduce the case.
        text = str(divergence)
        assert "seed=0" in text and "round" in text and "port" in text

    def test_divergence_reports_first_slot(self, monkeypatch):
        def sabotaged_pair(kind, n_ports, seed):
            return (
                VoqFabric(n_ports, IslipMatcher(n_ports, iterations=3)),
                VoqFabric(
                    n_ports,
                    _SabotagedIslip(n_ports, iterations=3, break_after=0),
                ),
            )

        monkeypatch.setattr(oracle, "_build_pair", sabotaged_pair)
        divergence, _ = compare_matchers(
            "islip", n_ports=4, seed=1, pattern="bernoulli-0.95", n_slots=40
        )
        assert divergence is not None
        assert divergence.round <= 2  # near-full load diverges immediately


# ----------------------------------------------------------------------
# committed regression corpus
# ----------------------------------------------------------------------
class TestCorpus:
    @pytest.fixture(scope="class")
    def corpus(self):
        with open(CORPUS_PATH) as f:
            return json.load(f)

    def test_corpus_shape(self, corpus):
        assert len(corpus["matcher"]) == 900
        assert len(corpus["routing"]) == 60
        assert all(r["agreed"] for r in corpus["matcher"])
        assert all(r["agreed"] for r in corpus["routing"])

    def test_matcher_records_replay(self, corpus):
        # Re-running the full 900-case grid is the conformance gate's
        # job; here we replay a fixed cross-section and pin its hashes.
        for record in corpus["matcher"][::151]:
            divergence, matchings_hash = compare_matchers(
                record["kind"],
                record["n_ports"],
                record["seed"],
                record["pattern"],
                n_slots=record["n_slots"],
            )
            assert divergence is None, str(divergence)
            assert matchings_hash == record["matchings_sha256"], record

    def test_routing_records_replay(self, corpus):
        for record in corpus["routing"][::23]:
            n = record["n_switches"]
            divergence, paths_hash = compare_routing(
                record["seed"], n_switches=n, extra_edges=max(2, n // 2)
            )
            assert divergence is None, str(divergence)
            assert paths_hash == record["paths_sha256"], record


# ----------------------------------------------------------------------
# fastpath differential (stacked engine vs scalar fabrics)
# ----------------------------------------------------------------------
class TestFastpathOracle:
    def test_small_sweep_clean(self):
        from repro.conform.oracle import fastpath_sweep

        divergences, records = fastpath_sweep(
            seeds=[0, 1],
            sizes=(4,),
            kinds=("pim", "fifo_strict"),
            patterns=("bernoulli-0.95", "permutation"),
            n_slots=60,
        )
        assert divergences == []
        assert records
        for record in records:
            assert record["agreed"]
            assert record["backend"] in ("numpy", "python")
            assert len(record["state_sha256"]) == 64
        # the pure-Python fallback backend is always part of the sweep
        assert {r["backend"] for r in records} >= {"python"}

    def test_state_hash_is_seed_sensitive(self):
        from repro.conform.oracle import compare_fastpath

        _, first = compare_fastpath(
            "pim", 4, seed=0, pattern="hotspot", n_slots=40,
            backend="python",
        )
        _, second = compare_fastpath(
            "pim", 4, seed=1, pattern="hotspot", n_slots=40,
            backend="python",
        )
        assert first != second

    def test_sabotaged_engine_is_caught(self, monkeypatch):
        """A candidate fabric whose RNG seed silently differs must be
        reported as a fastpath divergence, not pass unnoticed."""
        real_builder = oracle._build_fastpath_fabric

        def skewed_builder(kind, n_ports, seed):
            return real_builder(kind, n_ports, seed + 1)

        built = []

        def pair_builder(kind, n_ports, seed):
            # scalar twins build first in compare_fastpath; skew only
            # the second (engine-registered) set.
            built.append(None)
            if len(built) <= 2:
                return real_builder(kind, n_ports, seed)
            return skewed_builder(kind, n_ports, seed)

        monkeypatch.setattr(oracle, "_build_fastpath_fabric", pair_builder)
        divergence, _ = oracle.compare_fastpath(
            "pim", 4, seed=3, pattern="bernoulli-0.95", n_slots=60,
            backend="python",
        )
        assert isinstance(divergence, Divergence)
        assert divergence.kind == "fastpath"
        assert divergence.pair == "pim"

    def test_slot_driver_scenario_agrees(self):
        from repro.conform.oracle import compare_slot_driver

        divergence, record = compare_slot_driver(seed=1)
        assert divergence is None, str(divergence)
        assert record["agreed"]
        assert record["events_on"] < record["events_off"]
