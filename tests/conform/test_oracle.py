"""Differential-oracle tests: agreement, divergence detection, corpus."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro.conform.oracle as oracle
from repro.conform.oracle import (
    MATCHER_KINDS,
    Divergence,
    compare_matchers,
    compare_routing,
    matcher_sweep,
    routing_sweep,
)
from repro.core.matching.islip import IslipMatcher
from repro.switch.fabric import VoqFabric

CORPUS_PATH = Path(__file__).parent / "corpus.json"


# ----------------------------------------------------------------------
# agreement on the real implementations
# ----------------------------------------------------------------------
class TestAgreement:
    @pytest.mark.parametrize("kind", MATCHER_KINDS)
    def test_reference_and_bitmask_agree(self, kind):
        divergence, matchings_hash = compare_matchers(
            kind, n_ports=8, seed=7, pattern="bernoulli-0.6", n_slots=80
        )
        assert divergence is None
        assert len(matchings_hash) == 64

    def test_matchings_hash_is_seed_sensitive(self):
        _, h1 = compare_matchers("pim", 4, 1, "bernoulli-0.6", n_slots=40)
        _, h2 = compare_matchers("pim", 4, 2, "bernoulli-0.6", n_slots=40)
        assert h1 != h2

    def test_small_sweep_clean(self):
        divergences, records = matcher_sweep(
            seeds=[0, 1], sizes=(4,), n_slots=40
        )
        assert divergences == []
        assert len(records) == 2 * 1 * len(MATCHER_KINDS) * len(
            oracle.PATTERNS
        )
        assert all(r["agreed"] for r in records)

    def test_routing_clean(self):
        divergence, paths_hash = compare_routing(seed=3, n_switches=6)
        assert divergence is None
        assert len(paths_hash) == 64

    def test_routing_sweep_clean(self):
        divergences, records = routing_sweep(seeds=[0, 1], sizes=(5,))
        assert divergences == []
        assert all(r["agreed"] for r in records)


# ----------------------------------------------------------------------
# the oracle must actually detect divergence
# ----------------------------------------------------------------------
class _SabotagedIslip(IslipMatcher):
    """Drops the lowest-input match after a few clean slots."""

    def __init__(self, n_ports, iterations=3, break_after=5):
        super().__init__(n_ports, iterations)
        self._calls = 0
        self._break_after = break_after

    def match(self, requests, pre_matched=None):
        result = super().match(requests, pre_matched)
        self._calls += 1
        if self._calls > self._break_after and result.matching:
            del result.matching[min(result.matching)]
        return result


class TestDivergenceDetection:
    def test_broken_matcher_is_caught(self, monkeypatch):
        def sabotaged_pair(kind, n_ports, seed):
            assert kind == "islip"
            return (
                VoqFabric(n_ports, IslipMatcher(n_ports, iterations=3)),
                VoqFabric(n_ports, _SabotagedIslip(n_ports, iterations=3)),
            )

        monkeypatch.setattr(oracle, "_build_pair", sabotaged_pair)
        divergence, _ = compare_matchers(
            "islip", n_ports=8, seed=0, pattern="bernoulli-0.95", n_slots=80
        )
        assert isinstance(divergence, Divergence)
        assert divergence.kind == "matcher"
        assert divergence.pair == "islip"
        assert divergence.round >= 0
        assert divergence.port >= 0
        # The sabotage removes a grant, so the reference saw one where
        # the candidate has none.
        assert divergence.reference is not None
        assert divergence.candidate is None
        # The report must carry enough to reproduce the case.
        text = str(divergence)
        assert "seed=0" in text and "round" in text and "port" in text

    def test_divergence_reports_first_slot(self, monkeypatch):
        def sabotaged_pair(kind, n_ports, seed):
            return (
                VoqFabric(n_ports, IslipMatcher(n_ports, iterations=3)),
                VoqFabric(
                    n_ports,
                    _SabotagedIslip(n_ports, iterations=3, break_after=0),
                ),
            )

        monkeypatch.setattr(oracle, "_build_pair", sabotaged_pair)
        divergence, _ = compare_matchers(
            "islip", n_ports=4, seed=1, pattern="bernoulli-0.95", n_slots=40
        )
        assert divergence is not None
        assert divergence.round <= 2  # near-full load diverges immediately


# ----------------------------------------------------------------------
# committed regression corpus
# ----------------------------------------------------------------------
class TestCorpus:
    @pytest.fixture(scope="class")
    def corpus(self):
        with open(CORPUS_PATH) as f:
            return json.load(f)

    def test_corpus_shape(self, corpus):
        assert len(corpus["matcher"]) == 900
        assert len(corpus["routing"]) == 60
        assert all(r["agreed"] for r in corpus["matcher"])
        assert all(r["agreed"] for r in corpus["routing"])

    def test_matcher_records_replay(self, corpus):
        # Re-running the full 900-case grid is the conformance gate's
        # job; here we replay a fixed cross-section and pin its hashes.
        for record in corpus["matcher"][::151]:
            divergence, matchings_hash = compare_matchers(
                record["kind"],
                record["n_ports"],
                record["seed"],
                record["pattern"],
                n_slots=record["n_slots"],
            )
            assert divergence is None, str(divergence)
            assert matchings_hash == record["matchings_sha256"], record

    def test_routing_records_replay(self, corpus):
        for record in corpus["routing"][::23]:
            n = record["n_switches"]
            divergence, paths_hash = compare_routing(
                record["seed"], n_switches=n, extra_edges=max(2, n // 2)
            )
            assert divergence is None, str(divergence)
            assert paths_hash == record["paths_sha256"], record
