"""Run-digest tests: canonical encoding, stability, hashseed immunity."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.conform.digest import RunDigest, canonical_bytes, digest_scenario
from repro.sim.kernel import Simulator

SRC = str(Path(__file__).resolve().parents[2] / "src")

# Short enough to keep the suite snappy; long enough that the scenario
# converges, sets up its circuit, and carries traffic.
DURATION_US = 40_000.0


# ----------------------------------------------------------------------
# canonical_bytes
# ----------------------------------------------------------------------
class TestCanonicalBytes:
    def test_set_order_insensitive(self):
        assert canonical_bytes({3, 1, 2}) == canonical_bytes({2, 3, 1})
        assert canonical_bytes(frozenset("ab")) == canonical_bytes(set("ba"))

    def test_dict_order_insensitive(self):
        assert canonical_bytes({"a": 1, "b": 2}) == canonical_bytes(
            {"b": 2, "a": 1}
        )

    def test_list_order_sensitive(self):
        assert canonical_bytes([1, 2]) != canonical_bytes([2, 1])

    def test_scalar_types_distinguished(self):
        assert canonical_bytes(1) != canonical_bytes(1.0)
        assert canonical_bytes(True) != canonical_bytes(1)
        assert canonical_bytes("1") != canonical_bytes(1)
        assert canonical_bytes(None) != canonical_bytes(False)

    def test_rejects_arbitrary_objects(self):
        class Opaque:
            pass

        with pytest.raises(TypeError):
            canonical_bytes(Opaque())
        with pytest.raises(TypeError):
            canonical_bytes({"nested": Opaque()})

    def test_nested_structures(self):
        a = {"k": [{1, 2}, (3, 4)], "m": {"x": b"\x00\xff"}}
        b = {"m": {"x": b"\x00\xff"}, "k": [{2, 1}, (3, 4)]}
        assert canonical_bytes(a) == canonical_bytes(b)


# ----------------------------------------------------------------------
# callback identity
# ----------------------------------------------------------------------
class TestCallbackName:
    def test_plain_function(self):
        def tick():
            pass

        assert "tick" in RunDigest.callback_name(tick)

    def test_bound_method_includes_node_id(self):
        class Comp:
            node_id = "s3"

            def fire(self):
                pass

        name = RunDigest.callback_name(Comp().fire)
        assert name.startswith("s3:")
        assert "fire" in name

    def test_never_embeds_memory_address(self):
        class Comp:
            def fire(self):
                pass

        comp = Comp()
        assert hex(id(comp)) not in RunDigest.callback_name(comp.fire)


# ----------------------------------------------------------------------
# kernel integration
# ----------------------------------------------------------------------
class TestKernelHook:
    def test_digest_observes_dispatch_order(self):
        sim = Simulator()
        digest = RunDigest()
        sim.digest = digest
        fired = []
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.run(10.0)
        assert fired == ["a", "b"]
        assert digest.events_observed == 2

    def test_same_schedule_same_digest(self):
        def run():
            sim = Simulator()
            digest = RunDigest()
            sim.digest = digest
            for t in (3.0, 1.0, 2.0):
                sim.schedule(t, lambda: None)
            sim.run(10.0)
            return digest.hexdigest()

        assert run() == run()

    def test_detach_stops_observing(self):
        sim = Simulator()
        digest = RunDigest()
        sim.digest = digest
        sim.schedule(1.0, lambda: None)
        sim.run(5.0)
        sim.digest = None
        sim.schedule(6.0, lambda: None)
        sim.run(10.0)
        assert digest.events_observed == 1


# ----------------------------------------------------------------------
# scenario digest stability
# ----------------------------------------------------------------------
class TestScenarioDigest:
    def test_three_runs_identical(self):
        digests = {
            digest_scenario(seed=1, duration_us=DURATION_US)
            for _ in range(3)
        }
        assert len(digests) == 1

    def test_seed_sensitivity(self):
        assert digest_scenario(
            seed=1, duration_us=DURATION_US
        ) != digest_scenario(seed=2, duration_us=DURATION_US)

    @pytest.mark.parametrize("hashseed", ["0", "1", "random"])
    def test_hashseed_immunity(self, hashseed):
        """The digest must not depend on PYTHONHASHSEED."""
        expected = digest_scenario(seed=1, duration_us=DURATION_US)
        code = (
            "from repro.conform.digest import digest_scenario;"
            f"print(digest_scenario(seed=1, duration_us={DURATION_US}))"
        )
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hashseed
        env["PYTHONPATH"] = SRC
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env, check=True,
        )
        assert out.stdout.strip() == expected
