"""Property proof: the stacked engine is bit-identical to scalar stepping.

Hypothesis drives randomized *fleets* -- mixed matcher kinds, port
counts, iteration budgets, strict and fast RNG protocols, frame-schedule
(guaranteed-queue) fabrics that must fall back to scalar residency,
loads past saturation, and mid-run fault injections (a fabric pinned
off the vectorized path and later re-adopted, exactly the blast-radius
fallback a runtime fault triggers).  Every case asserts the strongest
available statement: after the final write-back the engine-driven
fabrics equal their scalar twins on *all* state -- queue levels and
contents, incremental masks, iSLIP pointer arrays, RNG stream position,
and every metric sample in order -- and the canonical digests of both
states are equal (the RunDigest-grade check: identical bytes, not just
identical summaries).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.conform.digest import canonical_bytes
from repro.conform.oracle import _fastpath_state
from repro.core.matching.bitmask import (
    BitmaskFifoScheduler,
    BitmaskIslip,
    BitmaskPim,
)
from repro.fastpath.backend import load_numpy
from repro.fastpath.engine import FabricArrayEngine
from repro.switch.fabric import FifoFabric, VoqFabric

BACKEND = "numpy" if load_numpy() is not None else "python"

KINDS = ("pim", "pim_strict", "islip", "fifo", "fifo_strict", "framed")


def build(kind: str, n_ports: int, iterations: int, seed: int):
    strict = kind.endswith("_strict")
    if kind.startswith("pim"):
        return VoqFabric(
            n_ports,
            BitmaskPim(
                n_ports,
                iterations=iterations,
                rng=random.Random(seed),
                strict_rng=strict,
            ),
        )
    if kind == "islip":
        return VoqFabric(n_ports, BitmaskIslip(n_ports, iterations=iterations))
    if kind == "framed":
        # guaranteed reservations force scalar residency: the engine
        # must keep this fabric correct on the hybrid path.
        schedule = [{0: n_ports - 1}, {}, {1 % n_ports: 0}]
        return VoqFabric(
            n_ports,
            BitmaskPim(
                n_ports, iterations=iterations, rng=random.Random(seed)
            ),
            frame_schedule=schedule,
        )
    return FifoFabric(
        n_ports,
        BitmaskFifoScheduler(
            n_ports, rng=random.Random(seed), strict_rng=strict
        ),
    )


fleet_spec = st.lists(
    st.tuples(
        st.sampled_from(KINDS),
        st.sampled_from([2, 3, 4, 8, 16]),
        st.integers(min_value=1, max_value=4),
    ),
    min_size=1,
    max_size=5,
)


@settings(max_examples=60, deadline=None)
@given(
    specs=fleet_spec,
    load=st.floats(min_value=0.1, max_value=1.5),
    traffic_seed=st.integers(min_value=0, max_value=2**32 - 1),
    slots=st.integers(min_value=20, max_value=120),
    pin_fraction=st.one_of(
        st.none(), st.floats(min_value=0.1, max_value=0.8)
    ),
)
def test_engine_fleet_bit_identical(
    specs, load, traffic_seed, slots, pin_fraction
):
    scalar = [
        build(kind, n, iters, seed=1000 + j)
        for j, (kind, n, iters) in enumerate(specs)
    ]
    mirrored = [
        build(kind, n, iters, seed=1000 + j)
        for j, (kind, n, iters) in enumerate(specs)
    ]
    engine = FabricArrayEngine(backend=BACKEND)
    for fabric in mirrored:
        engine.register(fabric)
    pin_slot = (
        None if pin_fraction is None else int(slots * pin_fraction)
    )
    unpin_slot = None if pin_slot is None else pin_slot + max(1, slots // 5)
    rng = random.Random(traffic_seed)
    for slot in range(slots):
        if slot == pin_slot:
            engine.pin_scalar(mirrored[0])
        elif slot == unpin_slot:
            engine.unpin(mirrored[0])
        for j, (kind, n, iters) in enumerate(specs):
            for i in range(n):
                if rng.random() < load:
                    o = rng.randrange(n)
                    scalar[j].offer(i, o, slot)
                    engine.offer(mirrored[j], i, o, slot)
        for fabric in scalar:
            fabric.step(slot)
        engine.step_all(slot)
    engine.sync()
    for fabric in mirrored:
        engine.unregister(fabric)
    for j, (twin, mirror) in enumerate(zip(scalar, mirrored)):
        ref_state = _fastpath_state(twin)
        cand_state = _fastpath_state(mirror)
        assert ref_state == cand_state, (
            f"fabric {j} spec {specs[j]} diverged: "
            + str({
                key: (ref_state[key], cand_state.get(key))
                for key in ref_state
                if ref_state[key] != cand_state.get(key)
            })[:800]
        )
        # digest-grade equality: identical canonical bytes, the same
        # statement RunDigest.absorb would fold into a run digest.
        assert canonical_bytes(ref_state) == canonical_bytes(cand_state)


@settings(max_examples=20, deadline=None)
@given(
    kind=st.sampled_from(("pim", "pim_strict", "fifo_strict", "islip")),
    n_ports=st.sampled_from([2, 4, 16]),
    traffic_seed=st.integers(min_value=0, max_value=2**16),
)
def test_python_fallback_matches_scalar(kind, n_ports, traffic_seed):
    """The pure-Python stacked-loop backend satisfies the same oracle.

    This runs regardless of numpy availability: the fallback is the
    contract the no-numpy CI job relies on.
    """
    twin = build(kind, n_ports, 3, seed=5)
    mirror = build(kind, n_ports, 3, seed=5)
    engine = FabricArrayEngine(backend="python")
    engine.register(mirror)
    rng = random.Random(traffic_seed)
    for slot in range(48):
        for i in range(n_ports):
            if rng.random() < 0.9:
                o = rng.randrange(n_ports)
                twin.offer(i, o, slot)
                engine.offer(mirror, i, o, slot)
        twin.step(slot)
        engine.step_all(slot)
    engine.sync()
    engine.unregister(mirror)
    assert _fastpath_state(twin) == _fastpath_state(mirror)


@pytest.mark.skipif(load_numpy() is None, reason="needs both backends")
def test_backends_agree_with_each_other():
    """numpy and pure-Python engines produce identical end states."""
    states = []
    for backend in ("numpy", "python"):
        fabric = build("pim", 8, 3, seed=13)
        engine = FabricArrayEngine(backend=backend)
        engine.register(fabric)
        rng = random.Random(99)
        for slot in range(100):
            for i in range(8):
                if rng.random() < 1.0:
                    engine.offer(fabric, i, rng.randrange(8), slot)
            engine.step_all(slot)
        engine.sync()
        engine.unregister(fabric)
        states.append(_fastpath_state(fabric))
    assert states[0] == states[1]
