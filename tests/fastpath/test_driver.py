"""FabricSlotDriver: wave coalescing semantics and network neutrality.

The driver's contract has three legs:

1. **Adoption is conservative** -- only drift-free switches with the
   driver's exact slot time are adopted; everything else keeps its
   private timer (the hybrid-fidelity fallback).
2. **Waves coalesce** -- S switches requesting ticks in one slot window
   cost one kernel event, dispatched in node-id order.
3. **Traffic neutrality** -- a Network run with ``fabric_slot_driver=
   True`` delivers byte-identical traffic outcomes (forwarding counts,
   queues, credits, epochs, link/host state) while executing strictly
   fewer kernel events; only the per-switch tick phase (``slot_index``)
   may differ, because the wave models one fabric-wide slot clock.
"""

from types import SimpleNamespace

from repro.conform.oracle import compare_slot_driver
from repro.fastpath.driver import FabricSlotDriver
from repro.net.network import Network
from repro.net.topology import Topology
from repro.sim.kernel import Simulator

from tests.conftest import fast_switch_config


def fake_switch(node_id, order, drift=0.0, slot_time=1.0):
    switch = SimpleNamespace(
        node_id=node_id,
        clock=SimpleNamespace(drift_ppm=drift),
        config=SimpleNamespace(slot_time_us=slot_time),
    )
    switch._slot_tick = lambda: order.append(node_id)
    return switch


class TestWaves:
    def test_adopt_refuses_drift_and_slot_mismatch(self):
        driver = FabricSlotDriver(Simulator(), slot_time_us=1.0)
        order = []
        assert not driver.adopt(fake_switch("s0", order, drift=50.0))
        assert not driver.adopt(fake_switch("s1", order, slot_time=2.0))
        assert driver.adopt(fake_switch("s2", order))
        assert driver.adopted == 1

    def test_one_wave_many_ticks_sorted(self):
        sim = Simulator()
        driver = FabricSlotDriver(sim, slot_time_us=1.0)
        order = []
        switches = [fake_switch(f"s{i}", order) for i in (3, 1, 2, 0)]
        for switch in switches:
            assert driver.adopt(switch)
            driver.request_tick(switch)
        # re-requesting within the same window is idempotent
        driver.request_tick(switches[0])
        sim.run(until=2.0)
        assert driver.waves == 1
        assert driver.ticks == 4
        assert order == ["s0", "s1", "s2", "s3"]

    def test_waves_rearm_per_window(self):
        sim = Simulator()
        driver = FabricSlotDriver(sim, slot_time_us=1.0)
        order = []
        switch = fake_switch("s0", order)
        driver.adopt(switch)
        driver.request_tick(switch)
        sim.run(until=1.5)
        driver.request_tick(switch)
        sim.run(until=3.0)
        assert driver.waves == 2
        assert order == ["s0", "s0"]


class TestNetwork:
    def test_driver_off_by_default(self):
        net = Network(Topology.line(2), switch_config=fast_switch_config())
        assert net.slot_driver is None

    def test_driver_adopts_drift_free_fabric(self):
        topo = Topology.grid(2, 2)
        net = Network(
            topo,
            switch_config=fast_switch_config(),
            fabric_slot_driver=True,
        )
        assert net.slot_driver is not None
        assert net.slot_driver.adopted == len(net.switches)

    def test_drifted_switches_keep_private_timers(self):
        """Clock drift is the fault the driver must not paper over."""
        topo = Topology.grid(2, 2)
        net = Network(
            topo,
            switch_config=fast_switch_config(),
            drift_ppm=40.0,
            fabric_slot_driver=True,
        )
        assert net.slot_driver.adopted == 0
        net.start()
        net.run(5_000.0)  # drifted fabric still runs, on private timers
        assert net.slot_driver.waves == 0

    def test_driver_coalesces_events_on_a_live_network(self):
        """Slot waves only fire when cells actually queue -- drive a
        circuit's worth of traffic and watch waves coalesce ticks."""
        from repro.traffic.workload import PoissonPacketWorkload

        topo = Topology.line(3)
        topo.add_host(0)
        topo.add_host(1)
        topo.connect("h0", "s0", port_a=0, bps=622_000_000)
        topo.connect("h1", "s2", port_a=0, bps=622_000_000)
        net = Network(
            topo,
            seed=1,
            switch_config=fast_switch_config(),
            fabric_slot_driver=True,
        )
        net.start()
        net.run_until_converged(timeout_us=500_000)
        circuit = net.setup_circuit("h0", "h1")
        workload = PoissonPacketWorkload(
            net.sim,
            net.host("h0"),
            circuit.vc,
            circuit.destination,
            mean_interval_us=200.0,
            packet_bytes=480,
            rng=net.streams.stream("test.driver.workload"),
            duration_us=10_000.0,
        )
        workload.start()
        net.run(20_000.0)
        assert net.slot_driver.waves > 0
        assert net.slot_driver.ticks >= net.slot_driver.waves

    def test_traffic_neutral_with_fewer_events(self):
        """The oracle's statement end to end: identical scrubbed
        fingerprints, strictly fewer kernel events."""
        divergence, record = compare_slot_driver(seed=3)
        assert divergence is None, str(divergence)
        assert record["events_on"] < record["events_off"]
