"""Unit tests for the whole-fabric slot engine's mechanics.

The engine's contract is *bit-identity*: a registered fabric must end
every sync in exactly the state per-switch scalar stepping would have
produced -- queues, masks, pointers, RNG stream position, and every
metric sample in order.  The randomized proof of that lives in
``test_property.py``; these tests pin the mechanics around it --
backend selection, the scalar-fallback residency rules, mid-run
pin/unpin, and write-back on unregister -- with small deterministic
cases.
"""

import random

import pytest

from repro.conform.oracle import FASTPATH_KINDS, compare_fastpath
from repro.core.matching.bitmask import (
    BitmaskFifoScheduler,
    BitmaskIslip,
    BitmaskPim,
)
from repro.core.matching.pim import ParallelIterativeMatcher
from repro.fastpath.backend import FORCE_PYTHON_ENV, load_numpy
from repro.fastpath.engine import FabricArrayEngine
from repro.switch.fabric import FifoFabric, VoqFabric

requires_numpy = pytest.mark.skipif(
    load_numpy() is None, reason="numpy unavailable or forced off"
)

BACKENDS = ["python"] + (["numpy"] if load_numpy() is not None else [])


def pim_fabric(seed: int = 7, n_ports: int = 4, **kwargs) -> VoqFabric:
    return VoqFabric(
        n_ports,
        BitmaskPim(n_ports, iterations=3, rng=random.Random(seed)),
        **kwargs,
    )


def drive(fabric, slots: int, seed: int, engine=None, load: float = 0.9):
    """Feed a frozen Bernoulli trace through the fabric or the engine."""
    rng = random.Random(seed)
    n = fabric.n_ports
    for slot in range(slots):
        for i in range(n):
            if rng.random() < load:
                o = rng.randrange(n)
                if engine is None:
                    fabric.offer(i, o, slot)
                else:
                    engine.offer(fabric, i, o, slot)
        if engine is None:
            fabric.step(slot)
        else:
            engine.step_all(slot)


# ----------------------------------------------------------------------
# backend selection
# ----------------------------------------------------------------------
class TestBackend:
    @requires_numpy
    def test_auto_picks_numpy_when_available(self):
        assert FabricArrayEngine(backend="auto").backend == "numpy"

    def test_python_backend_always_available(self):
        engine = FabricArrayEngine(backend="python")
        assert engine.backend == "python"
        assert engine.np is None

    def test_force_python_env_degrades_auto(self, monkeypatch):
        monkeypatch.setenv(FORCE_PYTHON_ENV, "1")
        assert load_numpy() is None
        assert FabricArrayEngine(backend="auto").backend == "python"

    def test_numpy_backend_raises_when_forced_off(self, monkeypatch):
        monkeypatch.setenv(FORCE_PYTHON_ENV, "1")
        with pytest.raises(RuntimeError):
            FabricArrayEngine(backend="numpy")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            FabricArrayEngine(backend="cuda")


# ----------------------------------------------------------------------
# residency rules (DESIGN section 13 scalar-fallback triggers)
# ----------------------------------------------------------------------
class TestResidency:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_plain_bitmask_fabrics_vectorize(self, backend):
        engine = FabricArrayEngine(backend=backend)
        fabrics = [
            pim_fabric(1),
            VoqFabric(8, BitmaskIslip(8, iterations=2)),
            FifoFabric(4, BitmaskFifoScheduler(4, rng=random.Random(2))),
        ]
        for fabric in fabrics:
            engine.register(fabric)
        if backend == "numpy":
            assert all(engine.vectorized(f) for f in fabrics)
            assert engine.n_vectorized == 3
        else:
            # the pure-Python backend keeps everything scalar-resident
            assert engine.n_vectorized == 0
        assert engine.n_registered == 3

    @requires_numpy
    def test_scalar_fallback_triggers(self):
        from repro.obs.trace import Tracer

        engine = FabricArrayEngine(backend="numpy")
        scalar_bound = [
            # reference (non-bitmask) scheduler
            VoqFabric(4, ParallelIterativeMatcher(4, rng=random.Random(3))),
            # wider than the 16-lane stacked masks
            VoqFabric(32, BitmaskPim(32, rng=random.Random(4))),
            # frame schedule (guaranteed reservations)
            VoqFabric(
                4,
                BitmaskPim(4, rng=random.Random(5)),
                frame_schedule=[{0: 1}],
            ),
            # live tracer
            VoqFabric(
                4, BitmaskPim(4, rng=random.Random(6)), tracer=Tracer()
            ),
            # bounded buffers
            VoqFabric(
                4, BitmaskPim(4, rng=random.Random(7)), buffer_capacity=8
            ),
        ]
        for fabric in scalar_bound:
            engine.register(fabric)
            assert not engine.vectorized(fabric)
        assert engine.n_registered == len(scalar_bound)
        assert engine.n_vectorized == 0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_scalar_residents_step_identically(self, backend):
        """Non-vectorizable fabrics are stepped by the engine, scalar."""
        twin = VoqFabric(
            4, BitmaskPim(4, rng=random.Random(9)), buffer_capacity=4
        )
        resident = VoqFabric(
            4, BitmaskPim(4, rng=random.Random(9)), buffer_capacity=4
        )
        engine = FabricArrayEngine(backend=backend)
        engine.register(resident)
        assert not engine.vectorized(resident)
        drive(twin, 80, seed=11, load=1.2)
        drive(resident, 80, seed=11, engine=engine, load=1.2)
        engine.sync()
        assert resident.metrics.cells_delivered == twin.metrics.cells_delivered
        assert resident.queues == twin.queues
        assert resident.scheduler.rng.getstate() == twin.scheduler.rng.getstate()

    def test_register_twice_rejected(self):
        engine = FabricArrayEngine(backend="python")
        fabric = pim_fabric()
        engine.register(fabric)
        with pytest.raises(ValueError):
            engine.register(fabric)

    def test_unregister_unknown_rejected(self):
        with pytest.raises(ValueError):
            FabricArrayEngine(backend="python").unregister(pim_fabric())


# ----------------------------------------------------------------------
# equivalence through the differential oracle
# ----------------------------------------------------------------------
class TestEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("kind", FASTPATH_KINDS)
    def test_engine_matches_scalar(self, kind, backend):
        """Every vectorized matcher kind, both backends, one oracle case
        (includes the mid-run pin/unpin cycle the oracle drives)."""
        divergence, state_hash = compare_fastpath(
            kind, 4, seed=5, pattern="bernoulli-0.95",
            n_slots=96, backend=backend,
        )
        assert divergence is None, str(divergence)
        assert len(state_hash) == 64

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_hotspot_pattern_n16(self, backend):
        divergence, _ = compare_fastpath(
            "pim", 16, seed=2, pattern="hotspot",
            n_slots=64, backend=backend,
        )
        assert divergence is None, str(divergence)


# ----------------------------------------------------------------------
# lifecycle: write-back, pin/unpin, metrics reset, backlog
# ----------------------------------------------------------------------
class TestLifecycle:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_unregister_writes_back_and_fabric_keeps_working(self, backend):
        twin = pim_fabric(21)
        mirrored = pim_fabric(21)
        engine = FabricArrayEngine(backend=backend)
        engine.register(mirrored)
        drive(twin, 60, seed=31, load=1.1)
        drive(mirrored, 60, seed=31, engine=engine, load=1.1)
        engine.unregister(mirrored)
        # the written-back fabric continues standalone, bit-identical
        rng = random.Random(77)
        for slot in range(60, 120):
            for i in range(4):
                if rng.random() < 0.8:
                    o = rng.randrange(4)
                    twin.offer(i, o, slot)
                    mirrored.offer(i, o, slot)
            assert twin.step(slot).matching == mirrored.step(slot).matching
        assert twin.queues == mirrored.queues
        assert (
            twin.metrics.latency._samples
            == mirrored.metrics.latency._samples
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_total_backlog_tracks_queues(self, backend):
        fabric = pim_fabric(23)
        engine = FabricArrayEngine(backend=backend)
        engine.register(fabric)
        assert engine.total_backlog(fabric) == 0
        engine.offer(fabric, 0, 1, 0)
        engine.offer(fabric, 2, 1, 0)
        assert engine.total_backlog(fabric) == 2
        engine.step_all(0)
        assert engine.total_backlog(fabric) == 1  # one grant per output

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_reset_metrics_matches_scalar_reset(self, backend):
        twin = pim_fabric(25)
        mirrored = pim_fabric(25)
        engine = FabricArrayEngine(backend=backend)
        engine.register(mirrored)
        drive(twin, 40, seed=41)
        drive(mirrored, 40, seed=41, engine=engine)
        twin.reset_metrics()
        engine.reset_metrics()
        drive_from = 40
        rng = random.Random(43)
        for slot in range(drive_from, drive_from + 40):
            for i in range(4):
                if rng.random() < 0.9:
                    o = rng.randrange(4)
                    twin.offer(i, o, slot)
                    engine.offer(mirrored, i, o, slot)
            twin.step(slot)
            engine.step_all(slot)
        engine.sync()
        assert mirrored.metrics.slots == twin.metrics.slots
        assert (
            mirrored.metrics.cells_delivered == twin.metrics.cells_delivered
        )
        assert (
            mirrored.metrics.latency._samples
            == twin.metrics.latency._samples
        )
