"""Test package."""
