"""Tests for slot-level arrival processes."""

import random

import pytest

from repro.traffic.arrivals import (
    BernoulliUniform,
    BurstyOnOff,
    Hotspot,
    Permutation,
    StarvationPattern,
)


def measured_load(process, slots=20_000):
    total = 0
    for slot in range(slots):
        total += len(process.arrivals(slot))
    return total / (slots * process.n_ports)


class TestBernoulliUniform:
    def test_load_accuracy(self):
        process = BernoulliUniform(8, 0.4, random.Random(1))
        assert measured_load(process) == pytest.approx(0.4, abs=0.02)
        assert process.offered_load == 0.4

    def test_destinations_roughly_uniform(self):
        process = BernoulliUniform(4, 1.0, random.Random(2))
        counts = [0] * 4
        for slot in range(5000):
            for _, output in process.arrivals(slot):
                counts[output] += 1
        total = sum(counts)
        for count in counts:
            assert count / total == pytest.approx(0.25, abs=0.03)

    def test_validation(self):
        with pytest.raises(ValueError):
            BernoulliUniform(4, 1.5)
        with pytest.raises(ValueError):
            BernoulliUniform(0, 0.5)


class TestHotspot:
    def test_hot_output_receives_fraction(self):
        process = Hotspot(
            8, 1.0, hot_output=3, hot_fraction=0.5, rng=random.Random(3)
        )
        hot, total = 0, 0
        for slot in range(5000):
            for _, output in process.arrivals(slot):
                total += 1
                hot += output == 3
        # 50% direct + 1/8 of the uniform remainder ~ 0.5625
        assert hot / total == pytest.approx(0.5625, abs=0.03)

    def test_validation(self):
        with pytest.raises(ValueError):
            Hotspot(4, 0.5, hot_output=9)
        with pytest.raises(ValueError):
            Hotspot(4, 0.5, hot_fraction=2.0)


class TestBurstyOnOff:
    def test_long_run_load(self):
        process = BurstyOnOff(8, 0.5, mean_burst=16.0, rng=random.Random(4))
        assert measured_load(process, slots=60_000) == pytest.approx(
            0.5, abs=0.05
        )

    def test_burst_keeps_destination(self):
        process = BurstyOnOff(8, 0.9, mean_burst=50.0, rng=random.Random(5))
        runs = []
        current = None
        length = 0
        for slot in range(20_000):
            outputs = dict(process.arrivals(slot))
            output = outputs.get(0)  # watch input 0 only
            if output is None:
                continue
            if output == current:
                length += 1
            else:
                if length:
                    runs.append(length)
                current, length = output, 1
        if length:
            runs.append(length)
        # With mean burst 50 over 8 destinations, same-destination runs
        # should be long on average.
        assert runs, "input 0 never turned on"
        assert sum(runs) / len(runs) > 10

    def test_full_load_always_on(self):
        process = BurstyOnOff(4, 1.0, mean_burst=8.0, rng=random.Random(6))
        for slot in range(100):
            assert len(process.arrivals(slot)) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstyOnOff(4, 0.0)
        with pytest.raises(ValueError):
            BurstyOnOff(4, 0.5, mean_burst=0.5)


class TestPermutation:
    def test_fixed_mapping(self):
        process = Permutation(4, 1.0, mapping=[1, 2, 3, 0])
        for slot in range(10):
            assert process.arrivals(slot) == [(0, 1), (1, 2), (2, 3), (3, 0)]

    def test_random_mapping_is_permutation(self):
        process = Permutation(8, 1.0, rng=random.Random(7))
        outputs = sorted(o for _, o in process.arrivals(0))
        assert outputs == list(range(8))

    def test_bad_mapping_rejected(self):
        with pytest.raises(ValueError):
            Permutation(4, 1.0, mapping=[0, 0, 1, 2])


class TestStarvationPattern:
    def test_exact_arrivals(self):
        process = StarvationPattern(16)
        assert process.arrivals(0) == [(1, 2), (1, 3), (4, 3)]
        assert process.offered_load == pytest.approx(3 / 16)

    def test_needs_five_ports(self):
        with pytest.raises(ValueError):
            StarvationPattern(4)
