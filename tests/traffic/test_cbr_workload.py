"""Tests for CBR sources and host-level workloads."""

import pytest

from repro._types import host_id
from repro.traffic.cbr import CbrSource, interarrival_jitter, latency_jitter
from repro.traffic.workload import FileTransferWorkload, PoissonPacketWorkload


class TestCbr:
    def test_stream_feeds_circuit(self, small_net):
        circuit, _ = small_net.reserve_bandwidth("h0", "h1", 4)
        small_net.run(2_000)
        source = CbrSource(small_net.host("h0"), circuit.vc)
        source.stream(20)
        small_net.run(200_000)
        assert small_net.host("h1").cells_received == 20
        assert source.cells_requested == 20

    def test_stream_validation(self, small_net):
        circuit, _ = small_net.reserve_bandwidth("h0", "h1", 4)
        source = CbrSource(small_net.host("h0"), circuit.vc)
        with pytest.raises(ValueError):
            source.stream(0)

    def test_jitter_helpers(self):
        assert interarrival_jitter([0.0, 10.0]) is None
        assert interarrival_jitter([0.0, 10.0, 20.0]) == pytest.approx(0.0)
        assert interarrival_jitter([0.0, 10.0, 30.0]) == pytest.approx(5.0)
        assert latency_jitter([5.0]) is None
        assert latency_jitter([5.0, 9.0, 6.0]) == pytest.approx(4.0)


class TestFileTransfer:
    def test_all_packets_delivered(self, small_net):
        circuit = small_net.setup_circuit("h0", "h1")
        workload = FileTransferWorkload(
            small_net.host("h0"),
            circuit.vc,
            host_id(1),
            n_packets=10,
            packet_bytes=480,
        )
        workload.start()
        small_net.run(400_000)
        assert workload.packets_sent == 10
        assert len(small_net.host("h1").delivered) == 10
        sizes = {p.size for p in small_net.host("h1").delivered}
        assert sizes == {480}


class TestRpc:
    def test_closed_loop_round_trips(self, small_net):
        from repro.traffic.workload import RpcWorkload

        request = small_net.setup_circuit("h0", "h1")
        response = small_net.setup_circuit("h1", "h0")
        rpc = RpcWorkload(
            small_net.sim,
            small_net.host("h0"),
            small_net.host("h1"),
            request.vc,
            response.vc,
            n_calls=8,
            think_time_us=100.0,
        )
        rpc.start()
        small_net.run(400_000)
        assert rpc.done
        assert len(rpc.rtts) == 8
        # A round trip must cost at least two one-way transits.
        assert min(rpc.rtts) > 10.0
        assert rpc.calls_completed == 8

    def test_validation(self, small_net):
        from repro.traffic.workload import RpcWorkload

        with pytest.raises(ValueError):
            RpcWorkload(
                small_net.sim,
                small_net.host("h0"),
                small_net.host("h1"),
                1,
                2,
                n_calls=0,
            )


class TestPoisson:
    def test_open_loop_arrivals_delivered(self, small_net):
        circuit = small_net.setup_circuit("h0", "h1")
        workload = PoissonPacketWorkload(
            small_net.sim,
            small_net.host("h0"),
            circuit.vc,
            host_id(1),
            mean_interval_us=2_000.0,
            packet_bytes=96,
            duration_us=40_000.0,
        )
        workload.start()
        small_net.run(300_000)
        assert workload.packets_sent >= 5
        assert len(small_net.host("h1").delivered) == workload.packets_sent

    def test_stop_halts_emission(self, small_net):
        circuit = small_net.setup_circuit("h0", "h1")
        workload = PoissonPacketWorkload(
            small_net.sim,
            small_net.host("h0"),
            circuit.vc,
            host_id(1),
            mean_interval_us=1_000.0,
        )
        workload.start()
        small_net.run(10_000)
        workload.stop()
        sent = workload.packets_sent
        small_net.run(20_000)
        assert workload.packets_sent == sent

    def test_validation(self, small_net):
        with pytest.raises(ValueError):
            PoissonPacketWorkload(
                small_net.sim,
                small_net.host("h0"),
                1,
                host_id(1),
                mean_interval_us=0.0,
            )
