"""Tests for the go-back-N ARQ layer and drop-mode flow control."""

import pytest

from repro._types import host_id
from repro.net.host import HostConfig
from repro.net.network import Network
from repro.net.packet import Packet
from repro.net.topology import Topology
from repro.switch.switch import SwitchConfig
from repro.traffic.arq import _ACK_MARK, _HEADER, ArqTransfer, _frame


def drop_net(seed=78, credit_allocation=8):
    topo = Topology.line(2)
    for h in range(4):
        topo.add_host(h)
    topo.connect("h0", "s0", port_a=0, bps=622_000_000)
    topo.connect("h2", "s0", port_a=0, bps=622_000_000)
    topo.connect("h1", "s1", port_a=0, bps=622_000_000)
    topo.connect("h3", "s1", port_a=0, bps=622_000_000)
    net = Network(
        topo,
        seed=seed,
        switch_config=SwitchConfig(
            frame_slots=32,
            flow_control="drop",
            credit_allocation=credit_allocation,  # the buffer bound
            ping_interval_us=500.0,
            ack_timeout_us=200.0,
            miss_threshold=2,
            boot_reconfig_delay_us=1_500.0,
        ),
        host_config=HostConfig(
            frame_slots=32,
            flow_control="drop",
            ping_interval_us=500.0,
            ack_timeout_us=200.0,
            miss_threshold=2,
        ),
    )
    net.start()
    net.run_until_converged(timeout_us=500_000)
    return net


class TestDropMode:
    def test_uncongested_traffic_flows_without_credit_state(self):
        net = drop_net()
        circuit = net.setup_circuit("h0", "h1")
        assert net.host("h0").senders[circuit.vc].upstream is None
        net.host("h0").send_packet(
            circuit.vc,
            Packet(source=host_id(0), destination=host_id(1), size=480),
        )
        net.run(100_000)
        assert len(net.host("h1").delivered) == 1
        # No credit cells crossed any link.
        credits = sum(s.stats.credits_sent for s in net.switches.values())
        assert credits == 0

    def test_congestion_drops_cells(self):
        net = drop_net(credit_allocation=4)
        a = net.setup_circuit("h0", "h1")
        b = net.setup_circuit("h2", "h3")
        for circuit, src, dst in ((a, 0, 1), (b, 2, 3)):
            for _ in range(40):
                net.host(f"h{src}").send_packet(
                    circuit.vc,
                    Packet(
                        source=host_id(src),
                        destination=host_id(dst),
                        size=48 * 20,
                    ),
                )
        net.run(1_000_000)
        assert net.total_cells_dropped() > 0
        assert (
            net.host("h1").reassembly_errors
            + net.host("h3").reassembly_errors
            > 0
        )


class TestArq:
    def arq_pair(self, net, n_packets=20, **kwargs):
        fwd = net.setup_circuit("h0", "h1")
        rev = net.setup_circuit("h1", "h0")
        return ArqTransfer(
            net.sim,
            net.host("h0"),
            net.host("h1"),
            fwd.vc,
            rev.vc,
            n_packets=n_packets,
            packet_bytes=480,
            timeout_us=3_000.0,
            **kwargs,
        )

    def test_clean_network_no_retransmissions(self):
        net = drop_net()
        arq = self.arq_pair(net)
        arq.start()
        net.run(1_000_000)
        assert arq.done
        assert arq.retransmissions == 0
        assert arq.efficiency == 1.0

    def test_reliable_despite_congestion(self):
        net = drop_net(credit_allocation=4)
        flood = net.setup_circuit("h2", "h3")
        for _ in range(120):
            net.host("h2").send_packet(
                flood.vc,
                Packet(source=host_id(2), destination=host_id(3), size=48 * 40),
            )
        arq = self.arq_pair(net, n_packets=30)
        arq.start()
        net.run(6_000_000)
        assert arq.done
        assert arq.retransmissions > 0
        assert arq.efficiency < 1.0  # the waste credits avoid

    def test_window_respected(self):
        net = drop_net()
        arq = self.arq_pair(net, window=3)
        arq.start()
        # Immediately after start only `window` packets are outstanding.
        assert arq.next_seq - arq.base <= 3
        net.run(1_000_000)
        assert arq.done

    def test_validation(self):
        net = drop_net()
        with pytest.raises(ValueError):
            self.arq_pair(net, window=0)
        with pytest.raises(ValueError):
            self.arq_pair(net, n_packets=0)

    def test_ack_mark_compared_by_value(self):
        """Regression: the ack check must use equality, not identity.

        ``_parse`` unpacks the mark with ``struct``, so it is a fresh
        int object (0xACC0 = 44224, far outside CPython's small-int
        cache) that is never the *same object* as the module constant.
        An ``is``-based guard silently ignored every ack; the sender
        then never slid its window and retransmitted forever.
        """
        net = drop_net()
        arq = self.arq_pair(net)
        arq.start()
        assert arq.base == 0
        ack = Packet(
            source=host_id(1),
            destination=host_id(0),
            payload=_frame(_ACK_MARK, 4, _HEADER.size),
        )
        arq._on_sender_packet(ack)
        assert arq.base == 5  # the cumulative ack advanced the window

    def test_severed_circuit_fails_terminally(self):
        """A transfer whose data path dies must park in ``failed`` after
        ``max_retries`` fruitless timeout rounds -- not retransmit its
        window every timeout until the end of time."""
        net = drop_net()
        arq = self.arq_pair(
            net, n_packets=30, max_retries=3, backoff=2.0, pacing_us=1_000.0
        )
        arq.start()
        net.run(5_000)  # a few paced packets get through first
        assert arq.base > 0
        net.link_between("s0", "s1").fail()
        net.run(4_000_000)
        assert arq.failed
        assert not arq.done
        # Exactly max_retries fruitless rounds ran after the last ack;
        # nothing is left armed (no event storm against a dead circuit).
        assert arq.timeouts <= 3 + arq.base  # progress resets the count
        assert arq._timer is None
        assert arq._pace_event is None
        transmitted_at_failure = arq.packets_transmitted
        net.run(4_000_000)
        assert arq.packets_transmitted == transmitted_at_failure

    def test_backoff_grows_timeout_between_rounds(self):
        net = drop_net()
        arq = self.arq_pair(net, n_packets=10, max_retries=3, backoff=2.0)
        arq.start()
        # Kill the path immediately: no ack ever arrives.
        net.link_between("h0", "s0").fail()
        net.run(2_000_000)
        assert arq.failed
        assert arq.timeouts == 3
        # Each fruitless round doubled the interval: 3ms, 6ms, 12ms.
        assert arq._current_timeout_us == arq.timeout_us * 2.0 ** 3

    def test_pacing_spreads_first_transmissions(self):
        net = drop_net()
        arq = self.arq_pair(net, n_packets=20, pacing_us=1_000.0)
        arq.start()
        # Pacing overrides the window blast: only the first packet goes
        # out at start time.
        assert arq.next_seq == 1
        net.run(1_000_000)
        assert arq.done
        assert arq.retransmissions == 0
        # 20 sends at 1ms spacing cannot complete before 19ms.
        assert arq.completed_at >= 19_000.0

    def test_new_knob_validation(self):
        net = drop_net()
        with pytest.raises(ValueError):
            self.arq_pair(net, max_retries=0)
        with pytest.raises(ValueError):
            self.arq_pair(net, backoff=0.5)
        with pytest.raises(ValueError):
            self.arq_pair(net, pacing_us=-1.0)

    def test_works_over_credit_network_too(self, small_net):
        """ARQ is harmless over the lossless network: zero
        retransmissions, it just adds acks."""
        net = small_net
        fwd = net.setup_circuit("h0", "h1")
        rev = net.setup_circuit("h1", "h0")
        arq = ArqTransfer(
            net.sim,
            net.host("h0"),
            net.host("h1"),
            fwd.vc,
            rev.vc,
            n_packets=10,
            packet_bytes=480,
            timeout_us=10_000.0,
        )
        arq.start()
        net.run(1_000_000)
        assert arq.done
        assert arq.retransmissions == 0
