"""SRC-scale smoke test.

Section 1: "AN1 has been in operation since early 1990, supporting over
100 workstations at SRC."  This test boots an installation of that
scale -- 30 switches, 100 dual-homed hosts -- converges it, runs traffic
between distant hosts, pulls the plug on a switch, and verifies the
200 ms budget and zero best-effort loss end to end.
"""

import random

import pytest

from repro._types import host_id, switch_id
from repro.constants import RECONFIGURATION_BUDGET_US
from repro.net.network import Network
from repro.net.packet import Packet
from repro.net.topology import Topology
from tests.conftest import fast_host_config, fast_switch_config


@pytest.fixture(scope="module")
def src_net():
    topo = Topology.src_lan(n_switches=30, n_hosts=100, rng=random.Random(7))
    net = Network(
        topo,
        seed=7,
        switch_config=fast_switch_config(enable_local_reroute=True),
        host_config=fast_host_config(),
    )
    net.start()
    net.run_until(net.fully_reconfigured, timeout_us=RECONFIGURATION_BUDGET_US)
    return net


def test_boot_converges_within_budget(src_net):
    assert src_net.now < RECONFIGURATION_BUDGET_US
    view = src_net.converged_view()
    assert view == src_net.expected_view()
    assert len(view.switches()) == 30
    assert len(view.hosts()) == 100


def test_many_circuits_deliver(src_net):
    net = src_net
    rng = random.Random(3)
    pairs = []
    for _ in range(10):
        a, b = rng.sample(range(100), 2)
        circuit = net.setup_circuit(f"h{a}", f"h{b}", timeout_us=200_000)
        pairs.append((a, b, circuit))
    for a, b, circuit in pairs:
        net.host(f"h{a}").send_packet(
            circuit.vc,
            Packet(source=host_id(a), destination=host_id(b), size=960),
        )
    net.run(400_000)
    for a, b, circuit in pairs:
        delivered = [
            p for p in net.host(f"h{b}").delivered if p.source == host_id(a)
        ]
        assert delivered, f"h{a}->h{b} lost its packet"
    assert net.total_cells_dropped() == 0


def test_plug_pull_at_scale(src_net):
    net = src_net
    t0 = net.now
    victim = net.main_component_switches()[len(net.switches) // 2]
    net.crash_switch(victim)
    net.run_until(
        net.fully_reconfigured, timeout_us=RECONFIGURATION_BUDGET_US
    )
    assert net.now - t0 < RECONFIGURATION_BUDGET_US
    assert victim not in net.main_component_switches()
