"""Surgical credit-cell loss across real links, recovered by resync.

This drives the full section-5 story end to end: credit cells (and only
credit cells) are corrupted on the wire with various probabilities; the
window shrinks, throughput degrades but *nothing is ever lost*, and the
periodic resynchronization protocol restores the full window.
"""

import random

import pytest

from repro._types import host_id
from repro.core.flowcontrol.resync import ResyncReply, ResyncRequest
from repro.net.cell import CellKind
from repro.net.packet import Packet
from tests.conftest import fast_host_config, fast_switch_config, line_with_hosts


def resync_net(**overrides):
    net = line_with_hosts(2, resync_interval_us=4_000.0, **overrides)
    net.start()
    net.run_until_converged(timeout_us=500_000)
    return net


def plain_credit_filter(rng, probability):
    """Drop plain credit returns (not resync messages) with the given
    probability -- resync must survive to do its job, as it would in the
    real design where resync exchanges are retried anyway."""

    def predicate(cell):
        if cell.kind is not CellKind.CREDIT:
            return False
        if isinstance(cell.payload, (ResyncRequest, ResyncReply)):
            return False
        return rng.random() < probability

    return predicate


@pytest.mark.parametrize("loss", [0.1, 0.3])
def test_credit_loss_degrades_then_recovers(loss):
    net = resync_net()
    circuit = net.setup_circuit("h0", "h1")
    trunk = net.link_between("s0", "s1")
    rng = random.Random(17)
    trunk.drop_filter = plain_credit_filter(rng, loss)

    h0, h1 = net.host("h0"), net.host("h1")
    for _ in range(10):
        h0.send_packet(
            circuit.vc,
            Packet(source=host_id(0), destination=host_id(1), size=480),
        )
    net.run(600_000)
    # Losslessness despite the credit bleed: every packet arrives.
    assert len(h1.delivered) == 10
    assert net.total_cells_dropped() == 0
    assert trunk.cells_corrupted > 0  # the filter really fired

    # After quiescence + resync rounds, every window is whole again.
    trunk.drop_filter = None
    net.run(50_000)
    for switch in net.switches.values():
        for card in switch.cards:
            for upstream in card.upstream.values():
                assert upstream.balance == upstream.allocation
    recovered = sum(
        r.credits_recovered
        for switch in net.switches.values()
        for card in switch.cards
        for r in card.resync.values()
    )
    assert recovered > 0


def test_total_credit_loss_stalls_until_resync():
    """Drop *every* plain credit on the trunk: the sender exhausts its
    window and stalls; only resync keeps data moving."""
    net = resync_net()
    circuit = net.setup_circuit("h0", "h1")
    trunk = net.link_between("s0", "s1")
    trunk.drop_filter = plain_credit_filter(random.Random(1), 1.0)

    h0, h1 = net.host("h0"), net.host("h1")
    h0.send_packet(
        circuit.vc,
        Packet(source=host_id(0), destination=host_id(1), size=48 * 120),
    )
    net.run(2_000_000)
    # Throughput is terrible (one window per resync period) but complete.
    assert h1.cells_received == 120
    assert len(h1.delivered) == 1


def test_without_resync_total_loss_deadlocks_the_circuit():
    """The contrast: resync disabled, total credit loss freezes the VC
    after one window -- exactly why the paper calls resynchronization
    necessary for performance recovery."""
    net = line_with_hosts(2, resync_interval_us=0.0)
    net.start()
    net.run_until_converged(timeout_us=500_000)
    circuit = net.setup_circuit("h0", "h1")
    trunk = net.link_between("s0", "s1")
    trunk.drop_filter = plain_credit_filter(random.Random(2), 1.0)
    h0, h1 = net.host("h0"), net.host("h1")
    h0.send_packet(
        circuit.vc,
        Packet(source=host_id(0), destination=host_id(1), size=48 * 120),
    )
    net.run(1_000_000)
    assert h1.cells_received < 120  # stuck at roughly one window
    # And no cell was *lost* -- they are stranded upstream, not dropped.
    assert net.total_cells_dropped() == 0
