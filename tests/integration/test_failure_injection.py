"""Failure injection: lossy links, lost credits, and resynchronization."""

import pytest

from repro._types import host_id
from repro.net.packet import Packet
from tests.conftest import (
    converged_line,
    fast_host_config,
    fast_switch_config,
    line_with_hosts,
)


def test_lost_credits_only_reduce_performance():
    """Section 5: "With credits, a lost message can only cause reduced
    performance."  We corrupt a fraction of all cells on a trunk link
    (losing credits, among others) and verify no buffer ever overflows
    and no spurious packets appear -- only throughput suffers."""
    net = converged_line(3, seed=31)
    circuit = net.setup_circuit("h0", "h1")
    link = net.link_between("s0", "s1")
    link.set_error_rate(0.02)
    h0 = net.host("h0")
    for _ in range(10):
        h0.send_packet(
            circuit.vc,
            Packet(source=host_id(0), destination=host_id(1), size=480),
        )
    net.run(400_000)
    h1 = net.host("h1")
    # Some packets may be corrupted (lost data cells kill reassembly),
    # but nothing crashed and no overflow was recorded anywhere.
    for switch in net.switches.values():
        for card in switch.cards:
            for downstream in card.downstream.values():
                assert downstream.overflows == 0
    assert len(h1.delivered) <= 10


def test_resync_restores_throughput_after_credit_loss():
    """Surgically drop credit cells only, then let periodic resync
    recover the window and confirm full-rate delivery resumes."""
    net = line_with_hosts(2, resync_interval_us=5_000.0)
    net.start()
    net.run_until_converged(timeout_us=500_000)
    circuit = net.setup_circuit("h0", "h1")
    h0 = net.host("h0")

    # First transfer primes counters.
    h0.send_packet(
        circuit.vc, Packet(source=host_id(0), destination=host_id(1), size=480)
    )
    net.run(50_000)

    # Steal credits from the switch-side upstream state: simulate loss by
    # draining balance below truth (as if credit cells were corrupted).
    s0 = net.switch("s0")
    victim_card = None
    for card in s0.cards:
        if circuit.vc in card.upstream:
            victim_card = card
            break
    assert victim_card is not None
    upstream = victim_card.upstream[circuit.vc]
    stolen = min(3, upstream.balance)
    upstream.balance -= stolen
    assert stolen > 0

    # Resync runs periodically; the balance must return to allocation.
    net.run_until(
        lambda: upstream.balance == upstream.allocation,
        timeout_us=100_000,
    )
    recovered = sum(
        r.credits_recovered for r in victim_card.resync.values()
    )
    assert recovered >= stolen

    # And traffic still flows at full health.
    h0.send_packet(
        circuit.vc, Packet(source=host_id(0), destination=host_id(1), size=480)
    )
    net.run(100_000)
    assert len(net.host("h1").delivered) == 2


def test_data_loss_detected_by_reassembly():
    """Dropped data cells surface as reassembly errors, not as silently
    corrupted packets."""
    net = converged_line(2, seed=32)
    circuit = net.setup_circuit("h0", "h1")
    link = net.link_between("s0", "s1")
    link.set_error_rate(0.2)
    for _ in range(20):
        net.host("h0").send_packet(
            circuit.vc,
            Packet(source=host_id(0), destination=host_id(1), size=48 * 10),
        )
    net.run(400_000)
    h1 = net.host("h1")
    assert h1.reassembly_errors > 0
    for packet in h1.delivered:
        assert packet.size == 480  # survivors intact


def test_network_survives_simultaneous_link_failures():
    from repro.net.network import Network
    from repro.net.topology import Topology

    topo = Topology.grid(3, 3)
    net = Network(topo, seed=33, switch_config=fast_switch_config())
    net.start()
    net.run_until_converged(timeout_us=500_000)
    net.fail_link("s0", "s1")
    net.fail_link("s4", "s5")
    net.fail_link("s7", "s8")
    net.run_until(net.fully_reconfigured, timeout_us=500_000)
    component = net.main_component_switches()
    assert len(component) == 9  # grid stays connected despite 3 cuts
    view = net.converged_view()
    assert view == net.expected_view_for(component)
