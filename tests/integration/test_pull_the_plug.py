"""The paper's favorite demo, as a test.

Section 1: "A favorite AN1 demo is pulling the plug on an arbitrary
switch in SRC's main LAN.  The network reconfigures in less than 200
milliseconds, and users see no service interruption."
"""

import random

import pytest

from repro._types import host_id, switch_id
from repro.constants import RECONFIGURATION_BUDGET_US
from repro.net.network import Network
from repro.net.packet import Packet
from repro.net.topology import Topology
from tests.conftest import fast_host_config, fast_switch_config


def src_style_net(seed=11):
    """A redundant grid core with dual-homed hosts on opposite corners."""
    topo = Topology.grid(3, 3)
    topo.add_host(0)
    topo.add_host(1)
    topo.connect("h0", "s0", port_a=0, bps=622_000_000)
    topo.connect("h0", "s3", port_a=1, bps=622_000_000)
    topo.connect("h1", "s8", port_a=0, bps=622_000_000)
    topo.connect("h1", "s5", port_a=1, bps=622_000_000)
    net = Network(
        topo,
        seed=seed,
        switch_config=fast_switch_config(enable_local_reroute=True),
        host_config=fast_host_config(),
    )
    net.start()
    net.run_until(net.fully_reconfigured, timeout_us=500_000)
    return net


def test_reconfiguration_under_budget_after_plug_pull():
    net = src_style_net()
    t0 = net.now
    net.crash_switch("s4")  # an arbitrary interior switch
    net.run_until(net.fully_reconfigured, timeout_us=RECONFIGURATION_BUDGET_US)
    assert net.now - t0 < RECONFIGURATION_BUDGET_US
    assert switch_id(4) not in net.main_component_switches()


def test_service_continues_through_plug_pull():
    """Traffic on a circuit that avoids the victim keeps flowing; a
    circuit through the victim is locally rerouted and recovers."""
    net = src_style_net()
    circuit = net.setup_circuit("h0", "h1")
    h0, h1 = net.host("h0"), net.host("h1")

    # Steady traffic before the failure.
    for _ in range(5):
        h0.send_packet(
            circuit.vc,
            Packet(source=host_id(0), destination=host_id(1), size=480),
        )
    net.run(100_000)
    delivered_before = len(h1.delivered)
    assert delivered_before == 5

    # Pull the plug on a random *non-endpoint* switch.
    victim = "s4"
    net.crash_switch(victim)
    net.run_until(net.fully_reconfigured, timeout_us=RECONFIGURATION_BUDGET_US)

    # Service resumes (rerouted or unaffected).
    for _ in range(5):
        h0.send_packet(
            circuit.vc,
            Packet(source=host_id(0), destination=host_id(1), size=480),
        )
    net.run(200_000)
    assert len(h1.delivered) == 10
    assert h1.reassembly_errors == 0


def test_plug_pull_of_every_interior_switch():
    """Sweep the victim across all interior switches: the survivors must
    always re-learn reality within budget."""
    for victim in ("s1", "s3", "s4", "s5", "s7"):
        net = src_style_net(seed=13)
        t0 = net.now
        net.crash_switch(victim)
        net.run_until(
            net.fully_reconfigured, timeout_us=RECONFIGURATION_BUDGET_US
        )
        assert net.now - t0 < RECONFIGURATION_BUDGET_US


def test_switch_revival_rejoins_network():
    net = src_style_net()
    net.crash_switch("s4")
    net.run_until(net.fully_reconfigured, timeout_us=RECONFIGURATION_BUDGET_US)
    net.restore_switch("s4")
    net.run_until(
        lambda: net.fully_reconfigured()
        and switch_id(4) in net.main_component_switches(),
        timeout_us=2_000_000,
    )
    assert net.converged_view() == net.expected_view()
