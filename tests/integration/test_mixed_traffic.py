"""Guaranteed and best-effort traffic sharing switches (sections 3-5)."""

import pytest

from repro._types import host_id
from repro.constants import FAST_CELL_TIME_US
from repro.core.guaranteed.latency import guaranteed_latency_bound_us
from repro.net.network import Network
from repro.net.packet import Packet
from repro.net.topology import Topology
from tests.conftest import fast_host_config, fast_switch_config


def four_host_line(seed=21, **overrides):
    topo = Topology.line(3)
    for h in range(4):
        topo.add_host(h)
    topo.connect("h0", "s0", port_a=0, bps=622_000_000)
    topo.connect("h1", "s2", port_a=0, bps=622_000_000)
    topo.connect("h2", "s0", port_a=0, bps=622_000_000)
    topo.connect("h3", "s2", port_a=0, bps=622_000_000)
    net = Network(
        topo,
        seed=seed,
        switch_config=fast_switch_config(**overrides),
        host_config=fast_host_config(),
    )
    net.start()
    net.run_until_converged(timeout_us=500_000)
    return net


def test_guaranteed_latency_respected_despite_best_effort_flood():
    """CBR cells keep their p*(2f+l) bound while a best-effort flood
    shares every trunk link."""
    net = four_host_line()
    cbr, reservation = net.reserve_bandwidth("h0", "h1", 8)
    net.run(2_000)
    flood = net.setup_circuit("h2", "h3")

    net.host("h0").send_raw_cells(cbr.vc, 100)
    for _ in range(30):
        net.host("h2").send_packet(
            flood.vc,
            Packet(source=host_id(2), destination=host_id(3), size=48 * 40),
        )
    net.run(600_000)

    h1 = net.host("h1")
    assert h1.cells_received >= 100
    frame_time = net.switch_config.frame_slots * FAST_CELL_TIME_US
    bound = guaranteed_latency_bound_us(
        reservation.path_length, frame_time, 1.0
    )
    assert h1.cell_latency[cbr.vc].maximum <= bound
    # And the flood itself completed without loss.
    assert len(net.host("h3").delivered) == 30


def test_best_effort_uses_unreserved_and_unused_reserved_slots():
    """With a reservation present but its source idle, best-effort
    traffic still gets through at full rate (section 4: best-effort cells
    can use an allocated slot if no guaranteed cell is present)."""
    net = four_host_line()
    cbr, _ = net.reserve_bandwidth("h0", "h1", 16)  # half the 32-slot frame
    net.run(2_000)
    flow = net.setup_circuit("h2", "h3")
    t0 = net.now
    for _ in range(10):
        net.host("h2").send_packet(
            flow.vc,
            Packet(source=host_id(2), destination=host_id(3), size=48 * 20),
        )
    net.run(400_000)
    assert len(net.host("h3").delivered) == 10
    # The idle reservation must not have starved the flow: effective
    # throughput stays well above the unreserved half of the link.
    h3 = net.host("h3")
    span = max(p.delivered_at for p in h3.delivered) - t0
    cells = 10 * 20
    cell_rate = cells / span  # cells per us
    full_rate = 1 / FAST_CELL_TIME_US
    assert cell_rate > 0.5 * full_rate * 0.5  # comfortably above starvation


def test_concurrent_cbr_streams_all_meet_rate():
    net = four_host_line()
    streams = []
    central = net.bandwidth_central()
    for pair in (("h0", "h1"), ("h2", "h3")):
        circuit, reservation = net.reserve_bandwidth(
            pair[0], pair[1], 4, central=central
        )
        streams.append((pair, circuit, reservation))
    net.run(2_000)
    for (src, _), circuit, _ in streams:
        net.host(src).send_raw_cells(circuit.vc, 50)
    net.run(600_000)
    for (_, dst), circuit, _ in streams:
        arrivals = net.host(dst).cell_arrivals.get(circuit.vc, [])
        assert len(arrivals) == 50


def test_admission_denial_protects_existing_streams():
    from repro.core.guaranteed.bandwidth_central import ReservationDenied

    net = four_host_line()
    central = net.bandwidth_central()
    net.reserve_bandwidth("h0", "h1", 20, central=central)
    # The shared trunk has 32-slot frames: 20 + 20 > 32 must be denied.
    with pytest.raises(ReservationDenied):
        net.reserve_bandwidth("h2", "h3", 20, central=central)
