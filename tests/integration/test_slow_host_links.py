"""Mixed link speeds: 155 Mb/s host links behind 622 Mb/s trunks.

Section 1: "Link bandwidth is higher, at 622 megabits-per-second (155
megabit-per-second links are also provided, e.g. for connecting a host
to a switch)."  The last-hop switch must pace a fast crossbar onto a
4x-slower output link without losing cells -- the credit window throttles
the upstream naturally.
"""

import pytest

from repro._types import host_id
from repro.constants import SLOW_LINK_BPS
from repro.net.network import Network
from repro.net.packet import Packet
from repro.net.topology import Topology
from tests.conftest import fast_host_config, fast_switch_config


def mixed_speed_net(seed=88):
    topo = Topology.line(2)
    topo.add_host(0)
    topo.add_host(1)
    # Default host-link speed: 155 Mb/s (the Topology default).
    topo.connect("h0", "s0", port_a=0)
    topo.connect("h1", "s1", port_a=0)
    net = Network(
        topo,
        seed=seed,
        switch_config=fast_switch_config(),
        host_config=fast_host_config(),
    )
    net.start()
    net.run_until_converged(timeout_us=500_000)
    return net


def test_speeds_assigned_from_topology():
    net = mixed_speed_net()
    assert net.link_between("h0", "s0").bps == SLOW_LINK_BPS
    assert net.link_between("s0", "s1").bps != SLOW_LINK_BPS


def test_bulk_transfer_lossless_across_speed_mismatch():
    net = mixed_speed_net()
    circuit = net.setup_circuit("h0", "h1")
    for _ in range(5):
        net.host("h0").send_packet(
            circuit.vc,
            Packet(source=host_id(0), destination=host_id(1), size=48 * 60),
        )
    net.run(2_000_000)
    h1 = net.host("h1")
    assert len(h1.delivered) == 5
    assert h1.reassembly_errors == 0
    assert net.total_cells_dropped() == 0
    # No buffer ever overflowed at the slow egress.
    for switch in net.switches.values():
        for card in switch.cards:
            for downstream in card.downstream.values():
                assert downstream.overflows == 0


def test_slow_egress_limits_throughput_not_correctness():
    net = mixed_speed_net()
    circuit = net.setup_circuit("h0", "h1")
    cells = 300
    t0 = net.now
    net.host("h0").send_packet(
        circuit.vc,
        Packet(source=host_id(0), destination=host_id(1), size=48 * cells),
    )
    net.run_until(
        lambda: net.host("h1").cells_received >= cells,
        timeout_us=10_000_000,
        check_interval_us=50.0,
    )
    elapsed = net.now - t0
    slow_cell_time = 53 * 8 / SLOW_LINK_BPS * 1e6  # ~2.7 us
    # Can't beat the slow link; shouldn't be much worse either.
    assert elapsed >= cells * slow_cell_time * 0.9
    assert elapsed <= cells * slow_cell_time * 2.0


def test_guaranteed_respects_slow_link_capacity():
    """Bandwidth central scales a 155 Mb/s link to a quarter of the
    frame's cells."""
    from repro.core.guaranteed.bandwidth_central import ReservationDenied

    from repro.constants import FAST_LINK_BPS

    net = mixed_speed_net()
    central = net.bandwidth_central()
    capacity = int(
        net.switch_config.frame_slots * SLOW_LINK_BPS / FAST_LINK_BPS
    )
    assert capacity < net.switch_config.frame_slots // 2
    with pytest.raises(ReservationDenied):
        net.reserve_bandwidth("h0", "h1", capacity + 1, central=central)
    net.reserve_bandwidth("h0", "h1", capacity, central=central)
