"""Test package."""
