"""Dual-homed host failover with automatic circuit re-establishment.

Section 1: "Each host has links to two different switches.  Only one
link is in active use at any time; the other is an alternate to be used
if the first fails."
"""

import pytest

from repro._types import host_id
from repro.net.network import Network
from repro.net.packet import Packet
from repro.net.topology import Topology
from tests.conftest import fast_host_config, fast_switch_config


def dual_homed_net(auto_reopen=True, seed=41):
    topo = Topology.grid(2, 2)
    topo.add_host(0)
    topo.add_host(1)
    topo.connect("h0", "s0", port_a=0, bps=622_000_000)
    topo.connect("h0", "s2", port_a=1, bps=622_000_000)
    topo.connect("h1", "s3", port_a=0, bps=622_000_000)
    topo.connect("h1", "s1", port_a=1, bps=622_000_000)
    net = Network(
        topo,
        seed=seed,
        switch_config=fast_switch_config(),
        host_config=fast_host_config(auto_reopen_on_failover=auto_reopen),
    )
    net.start()
    net.run_until_converged(timeout_us=500_000)
    return net


def test_traffic_resumes_after_primary_link_death():
    net = dual_homed_net()
    circuit = net.setup_circuit("h0", "h1")
    h0, h1 = net.host("h0"), net.host("h1")

    h0.send_packet(
        circuit.vc,
        Packet(source=host_id(0), destination=host_id(1), size=480),
    )
    net.run(100_000)
    assert len(h1.delivered) == 1

    net.fail_link("h0", "s0")
    net.run_until(lambda: h0.active_port_index == 1, timeout_us=100_000)
    # The host re-emitted setup over the alternate; give it time to
    # install along the new path, then send again.
    net.run(20_000)
    h0.send_packet(
        circuit.vc,
        Packet(source=host_id(0), destination=host_id(1), size=480),
    )
    net.run(200_000)
    assert len(h1.delivered) == 2
    assert h1.reassembly_errors == 0


def test_queued_cells_survive_failover():
    """Cells still queued at the controller when the link dies follow the
    new path (only cells in flight on the dead link are lost)."""
    net = dual_homed_net(seed=43)
    circuit = net.setup_circuit("h0", "h1")
    h0, h1 = net.host("h0"), net.host("h1")
    # Queue a large packet, then kill the primary link immediately: most
    # cells are still in the controller.
    h0.send_packet(
        circuit.vc,
        Packet(source=host_id(0), destination=host_id(1), size=48 * 200),
    )
    net.fail_link("h0", "s0")
    net.run(400_000)
    # Either the whole packet made it pre-detection (unlikely at this
    # size) or its tail crossed the new path; a clean delivery OR a
    # single reassembly error are the only acceptable outcomes --
    # never silence.
    assert (len(h1.delivered) + h1.reassembly_errors) >= 1
    # A fresh packet always gets through.
    h0.send_packet(
        circuit.vc,
        Packet(source=host_id(0), destination=host_id(1), size=480),
    )
    net.run(200_000)
    assert any(p.size == 480 for p in h1.delivered)


def test_manual_mode_requires_explicit_reopen():
    net = dual_homed_net(auto_reopen=False, seed=44)
    circuit = net.setup_circuit("h0", "h1")
    h0, h1 = net.host("h0"), net.host("h1")
    net.fail_link("h0", "s0")
    net.run_until(lambda: h0.active_port_index == 1, timeout_us=100_000)
    net.run(20_000)
    h0.send_packet(
        circuit.vc,
        Packet(source=host_id(0), destination=host_id(1), size=96),
    )
    net.run(150_000)
    # Without auto-reopen the new first-hop switch saw no setup cell:
    # cells sit in its pending buffer and nothing is delivered.
    assert len(h1.delivered) == 0
