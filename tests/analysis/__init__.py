"""Test package."""
