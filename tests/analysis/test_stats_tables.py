"""Tests for statistics helpers, tables, and experiment reports."""

import pytest

from repro.analysis.experiments import ExperimentReport
from repro.analysis.stats import (
    coefficient_of_variation,
    confidence_interval95,
    jain_fairness,
    mean,
    stdev,
)
from repro.analysis.tables import Table


class TestStats:
    def test_mean_and_stdev(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert stdev([2.0, 4.0]) == pytest.approx(2.0 ** 0.5)
        assert stdev([5.0]) == 0.0
        with pytest.raises(ValueError):
            mean([])

    def test_confidence_interval(self):
        low, high = confidence_interval95([10.0] * 20)
        assert low == high == 10.0
        low, high = confidence_interval95([1.0, 2.0, 3.0, 4.0])
        assert low < 2.5 < high

    def test_cv(self):
        assert coefficient_of_variation([5.0, 5.0]) == 0.0
        with pytest.raises(ValueError):
            coefficient_of_variation([1.0, -1.0])

    def test_jain_fairness(self):
        assert jain_fairness([10.0, 10.0, 10.0]) == pytest.approx(1.0)
        assert jain_fairness([30.0, 0.0, 0.0]) == pytest.approx(1 / 3)
        assert jain_fairness([0.0, 0.0]) == 1.0
        with pytest.raises(ValueError):
            jain_fairness([])


class TestTable:
    def test_render_alignment(self):
        table = Table(["name", "value"], title="demo")
        table.add_row("alpha", 1.2345)
        table.add_row("b", 12345.0)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "alpha" in lines[3]  # title, header, separator, first row
        assert "1.234" in text
        assert "12,345" in text

    def test_row_arity_checked(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_float_formatting(self):
        table = Table(["v"])
        table.add_row(0.0)
        table.add_row(42.0)
        text = table.render()
        assert "0" in text and "42.0" in text


class TestExperimentReport:
    def test_checks_and_verdicts(self):
        report = ExperimentReport("E1", "head-of-line blocking")
        report.check("fifo throughput", "~0.58", "0.60", holds=True)
        report.check("pim throughput", ">0.9", "0.97", holds=True)
        report.check("note", "-", "informational")
        assert report.all_hold
        text = report.render()
        assert "E1" in text and "yes" in text and "NO" not in text

    def test_failed_check_renders_no(self):
        report = ExperimentReport("EX", "x")
        report.check("claim", "1", "2", holds=False)
        assert not report.all_hold
        assert "NO" in report.render()

    def test_tables_attached(self):
        report = ExperimentReport("EX", "x")
        table = Table(["a"])
        table.add_row(1)
        report.add_table(table)
        assert "a" in report.render()
