"""Data-vs-control drop accounting on dead links."""

from repro._types import switch_id
from repro.net.cell import Cell, CellKind
from repro.net.link import Link
from repro.sim.kernel import Simulator
from tests.net.test_link_port import RecordingNode


def test_data_drops_counted_separately():
    sim = Simulator()
    a = RecordingNode(sim, switch_id(0))
    b = RecordingNode(sim, switch_id(1))
    link = Link(sim, a.port(0), b.port(0))
    link.fail()
    a.port(0).send(Cell(vc=1, kind=CellKind.DATA))
    a.port(0).send(Cell(vc=0, kind=CellKind.PING))
    a.port(0).send(Cell(vc=0, kind=CellKind.CREDIT))
    sim.run()
    assert link.cells_dropped == 3
    assert link.data_cells_dropped == 1


def test_in_flight_data_drop_counted():
    sim = Simulator()
    a = RecordingNode(sim, switch_id(0))
    b = RecordingNode(sim, switch_id(1))
    link = Link(sim, a.port(0), b.port(0), length_km=10.0)
    a.port(0).send(Cell(vc=1, kind=CellKind.DATA))
    sim.schedule(5.0, link.fail)
    sim.run()
    assert link.data_cells_dropped == 1


def test_drop_filter_targets_specific_cells():
    sim = Simulator()
    a = RecordingNode(sim, switch_id(0))
    b = RecordingNode(sim, switch_id(1))
    link = Link(sim, a.port(0), b.port(0))
    link.drop_filter = lambda cell: cell.kind is CellKind.CREDIT
    a.port(0).send(Cell(vc=1, kind=CellKind.DATA))
    a.port(0).send(Cell(vc=1, kind=CellKind.CREDIT))
    sim.run()
    assert len(b.received) == 1
    assert b.received[0][2].kind is CellKind.DATA
    assert link.cells_corrupted == 1
