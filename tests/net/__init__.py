"""Test package."""
