"""Tests for network assembly and operations."""

import pytest

from repro._types import host_id, switch_id
from repro.net.network import Network, NetworkError
from repro.net.topology import Topology
from tests.conftest import fast_switch_config, line_with_hosts


class TestAssembly:
    def test_nodes_and_links_instantiated(self):
        net = line_with_hosts(3)
        assert len(net.switches) == 3
        assert len(net.hosts) == 2
        assert len(net.links) == 4

    def test_node_lookup_by_string(self):
        net = line_with_hosts(2)
        assert net.switch("s0").node_id == switch_id(0)
        assert net.host("h1").node_id == host_id(1)
        assert net.node("s1") is net.switches[switch_id(1)]

    def test_link_between(self):
        net = line_with_hosts(2)
        link = net.link_between("s0", "s1")
        assert link.working
        with pytest.raises(NetworkError):
            net.link_between("s0", "h1")

    def test_link_speeds_follow_cable_spec(self):
        topo = Topology.line(2)
        topo.add_host(0)
        topo.connect("h0", "s0")  # defaults to slow host link
        net = Network(topo, switch_config=fast_switch_config())
        assert net.link_between("h0", "s0").bps == 155_000_000
        assert net.link_between("s0", "s1").bps == 622_000_000

    def test_start_idempotent(self):
        net = line_with_hosts(2)
        net.start()
        net.start()
        net.run_until_converged(timeout_us=500_000)


class TestConvergencePredicates:
    def test_not_converged_before_start(self):
        net = line_with_hosts(2)
        assert not net.converged()
        with pytest.raises(NetworkError):
            net.converged_view()

    def test_run_until_times_out(self):
        net = line_with_hosts(2)  # never started: cannot converge
        with pytest.raises(NetworkError):
            net.run_until_converged(timeout_us=5_000.0)

    def test_reconfig_root_is_tag_initiator(self):
        net = line_with_hosts(3)
        net.start()
        net.run_until_converged(timeout_us=500_000)
        root = net.reconfig_root()
        tag = net.switch("s0").reconfig.view_tag
        assert root == tag.initiator

    def test_main_component_after_crash(self):
        net = line_with_hosts(4)
        net.start()
        net.run_until_converged(timeout_us=500_000)
        net.crash_switch("s3")
        component = net.main_component_switches()
        assert component == [switch_id(0), switch_id(1), switch_id(2)]

    def test_expected_view_tracks_failures(self):
        net = line_with_hosts(3)
        net.start()
        before = len(net.expected_view().edges)
        net.fail_link("s0", "s1")
        assert len(net.expected_view().edges) == before - 1
        net.restore_link("s0", "s1")
        assert len(net.expected_view().edges) == before


class TestIncrementalEpochInstall:
    def test_same_root_epoch_installs_incrementally(self):
        topo = Topology.grid(2, 3)
        topo.add_host(0)
        topo.add_host(1)
        topo.connect("h0", "s0", port_a=0)
        topo.connect("h1", "s5", port_a=0)
        net = Network(topo, seed=42, switch_config=fast_switch_config())
        net.start()
        net.run_until_converged(timeout_us=500_000)
        # Re-trigger from the current epoch's initiator: the successor
        # tag keeps the same initiator, so the up*/down* root is
        # unchanged and every switch repairs its orientation over the
        # (here empty) delta instead of rebuilding from scratch.  Which
        # switch wins a *failure-triggered* epoch race depends on
        # detection timing, so the deterministic same-root case is an
        # explicit re-trigger.
        initiator = net.reconfig_root()
        net.switch(str(initiator)).reconfig.trigger()
        net.run(200_000)
        incremental = sum(
            s.stats.route_installs_incremental
            for s in net.switches.values()
        )
        assert incremental == len(net.switches)
        assert net.reconfig_root() == initiator
        # Routing still works over the repaired orientation.
        circuit = net.setup_circuit("h0", "h1")
        assert circuit is not None

    def test_different_root_epoch_falls_back_to_full_rebuild(self):
        net = line_with_hosts(3)
        net.start()
        net.run_until_converged(timeout_us=500_000)
        full_before = sum(
            s.stats.route_installs_full for s in net.switches.values()
        )
        # Trigger from a switch that is NOT the current initiator: the
        # root moves, the delta path is inapplicable, and every install
        # must fall back to a from-scratch rebuild.
        initiator = net.reconfig_root()
        other = [
            s
            for s in net.switches.values()
            if s.node_id != initiator
        ][0]
        other.reconfig.trigger()
        net.run(200_000)
        assert net.reconfig_root() == other.node_id
        full_after = sum(
            s.stats.route_installs_full for s in net.switches.values()
        )
        assert full_after > full_before


class TestFaultInjection:
    def test_crash_and_restore_switch(self):
        net = line_with_hosts(3)
        failed = net.crash_switch("s1")
        assert len(failed) == 2  # both line links; host links elsewhere
        assert all(not l.working for l in failed)
        restored = net.restore_switch("s1")
        assert len(restored) == 2
        assert all(l.working for l in restored)

    def test_drift_assignment(self):
        topo = Topology.line(3)
        net = Network(
            topo, seed=9, switch_config=fast_switch_config(), drift_ppm=500.0
        )
        rates = {s.clock.rate for s in net.switches.values()}
        assert len(rates) == 3  # each switch got its own drift
        for rate in rates:
            assert 1 - 600e-6 < rate < 1 + 600e-6


class TestCircuitApi:
    def test_setup_circuit_unknown_host(self):
        net = line_with_hosts(2)
        net.start()
        net.run_until_converged(timeout_us=500_000)
        with pytest.raises(KeyError):
            net.setup_circuit("h9", "h1")

    def test_reserve_requires_admission(self, small_net):
        from repro.core.guaranteed.bandwidth_central import ReservationDenied

        central = small_net.bandwidth_central()
        small_net.reserve_bandwidth("h0", "h1", 30, central=central)
        with pytest.raises(ReservationDenied):
            small_net.reserve_bandwidth("h0", "h1", 30, central=central)

    def test_circuits_registry(self, small_net):
        circuit = small_net.setup_circuit("h0", "h1")
        assert small_net.circuits[circuit.vc] is circuit
