"""Tests for the structured datacenter topology generators."""

import pytest

from repro._types import switch_id
from repro.core.routing.updown import UpDownOrientation
from repro.net.topogen import (
    TIER_AGGREGATION,
    TIER_CORE,
    TIER_EDGE,
    TIER_LEAF,
    TIER_SPINE,
    fat_tree,
    folded_clos,
    spine_leaf,
)
from repro.net.topology import TopologyError


def switch_connected(view):
    """BFS over switch-switch edges only."""
    adjacency = {}
    for (na, _), (nb, _) in view.edges:
        if na.is_switch and nb.is_switch:
            adjacency.setdefault(na, []).append(nb)
            adjacency.setdefault(nb, []).append(na)
    switches = set(view.switches())
    if not switches:
        return True
    start = next(iter(sorted(switches)))
    seen = {start}
    frontier = [start]
    while frontier:
        node = frontier.pop()
        for neighbor in adjacency.get(node, []):
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append(neighbor)
    return seen == switches


class TestFatTree:
    def test_counts_k4(self):
        st = fat_tree(4)
        # (k/2)^2 = 4 core, 4 pods x (2 agg + 2 edge) = 16 pod switches.
        assert len(st.topology.switches()) == 20
        assert len(st.switches_in_tier(TIER_CORE)) == 4
        assert len(st.switches_in_tier(TIER_AGGREGATION)) == 8
        assert len(st.switches_in_tier(TIER_EDGE)) == 8
        assert st.n_pods() == 4
        # k^2/4 edge-agg cables per pod x k pods + k^2/4 x k/2... total:
        # each pod has (k/2)^2 edge-agg cables; each agg has k/2 core
        # uplinks.  k=4: 4x4 + 8x2 = 32.
        assert len(st.topology.switch_edges()) == 32

    def test_every_switch_has_k_ports(self):
        st = fat_tree(4)
        for switch in st.topology.switches():
            assert st.topology.ports_of(switch) == 4

    def test_datacenter_scale_counts(self):
        st = fat_tree(32)
        assert len(st.topology.switches()) == 5 * 32 * 32 // 4  # 1280
        assert len(st.topology.switch_edges()) == 16384

    def test_connected_and_orientable(self):
        st = fat_tree(8)
        view = st.view()
        assert switch_connected(view)
        orientation = UpDownOrientation(view, st.default_root())
        # On a 3-tier Clos rooted at a core switch every switch is within
        # 4 hops of the root.
        assert max(orientation.levels.values()) <= 4

    def test_default_root_is_top_tier(self):
        st = fat_tree(4)
        assert st.tier[st.default_root()] == TIER_CORE
        assert st.default_root() == st.switches_in_tier(TIER_CORE)[-1]

    def test_hosts_attach_to_edge_switches(self):
        st = fat_tree(4, hosts_per_edge=2)
        assert len(st.topology.hosts()) == 4 * 2 * 2  # k^3/4 = 16
        for edge_switch, hosts in st.hosts_of.items():
            assert st.tier[edge_switch] == TIER_EDGE
            assert len(hosts) == 2

    def test_pod_membership(self):
        st = fat_tree(4)
        for p in range(4):
            members = st.switches_in_pod(p)
            assert len(members) == 4  # k/2 agg + k/2 edge
            tiers = {st.tier[s] for s in members}
            assert tiers == {TIER_AGGREGATION, TIER_EDGE}

    @pytest.mark.parametrize("k", [0, 1, 3, 5])
    def test_odd_or_tiny_k_rejected(self, k):
        with pytest.raises(TopologyError):
            fat_tree(k)

    def test_too_many_hosts_rejected(self):
        with pytest.raises(TopologyError):
            fat_tree(4, hosts_per_edge=3)

    def test_deterministic(self):
        assert fat_tree(4).view() == fat_tree(4).view()


class TestSpineLeaf:
    def test_full_bipartite(self):
        st = spine_leaf(4, 8)
        assert len(st.switches_in_tier(TIER_SPINE)) == 4
        assert len(st.switches_in_tier(TIER_LEAF)) == 8
        assert len(st.topology.switch_edges()) == 32

    def test_parallel_cables(self):
        st = spine_leaf(2, 3, links_per_pair=2)
        assert len(st.topology.switch_edges()) == 12
        assert switch_connected(st.view())

    def test_hosts_and_root(self):
        st = spine_leaf(2, 4, hosts_per_leaf=3)
        assert len(st.topology.hosts()) == 12
        assert st.tier[st.default_root()] == TIER_SPINE

    def test_orientation_levels_are_tiered(self):
        st = spine_leaf(3, 6)
        orientation = UpDownOrientation(st.view(), st.default_root())
        # Root spine at 0, every leaf at 1, other spines at 2.
        for leaf in st.switches_in_tier(TIER_LEAF):
            assert orientation.levels[leaf] == 1
        for spine in st.switches_in_tier(TIER_SPINE):
            assert orientation.levels[spine] in (0, 2)

    def test_bad_params_rejected(self):
        with pytest.raises(TopologyError):
            spine_leaf(0, 4)
        with pytest.raises(TopologyError):
            spine_leaf(2, 4, links_per_pair=0)


class TestFoldedClos:
    def test_is_spine_leaf_with_reserved_host_ports(self):
        st = folded_clos(4, 4, 8)
        assert len(st.switches_in_tier(TIER_SPINE)) == 4
        assert len(st.switches_in_tier(TIER_LEAF)) == 8
        # Every leaf reserves its n host ports even when unpopulated.
        for leaf in st.switches_in_tier(TIER_LEAF):
            assert st.topology.ports_of(leaf) == 4 + 4

    def test_attach_hosts_fills_leaf_ports(self):
        st = folded_clos(4, 2, 3, attach_hosts=True)
        assert len(st.topology.hosts()) == 6
        for leaf in st.switches_in_tier(TIER_LEAF):
            assert len(st.hosts_of[leaf]) == 2

    def test_params_recorded(self):
        st = folded_clos(4, 2, 3)
        assert st.params == {"m": 4, "n": 2, "r": 3, "attach_hosts": 0}
        assert st.name == "folded_clos"


class TestDownstreamIntegration:
    def test_routes_exist_between_far_pods(self):
        from repro.core.routing.paths import RouteComputer

        st = fat_tree(4, hosts_per_edge=1)
        computer = RouteComputer(st.view(), st.default_root())
        hosts = st.topology.hosts()
        route = computer.host_route(hosts[0], hosts[-1])
        # h0 and h15 sit in pods 0 and 3: the route must climb to core.
        assert any(
            st.tier.get(node) == TIER_CORE for node in route.nodes
        )

    def test_generated_switch_ids_are_plain(self):
        st = fat_tree(4)
        assert switch_id(0) in st.tier
