"""Host controller behaviour: pacing, credits, failover, resync."""

import pytest

from repro._types import host_id, switch_id
from repro.core.reconfig.skeptic import LinkVerdict
from repro.net.cell import TrafficClass
from repro.net.packet import Packet
from tests.conftest import converged_line, line_with_hosts


class TestSending:
    def test_send_requires_open_circuit(self, small_net):
        host = small_net.host("h0")
        with pytest.raises(KeyError):
            host.send_packet(
                999, Packet(source=host_id(0), destination=host_id(1))
            )
        with pytest.raises(KeyError):
            host.send_raw_cells(999, 1)

    def test_duplicate_circuit_rejected(self, small_net):
        host = small_net.host("h0")
        host.open_circuit(500, host_id(1), send_setup=False)
        with pytest.raises(ValueError):
            host.open_circuit(500, host_id(1), send_setup=False)

    def test_guaranteed_circuit_requires_rate(self, small_net):
        host = small_net.host("h0")
        with pytest.raises(ValueError):
            host.open_circuit(
                501, host_id(1), traffic_class=TrafficClass.GUARANTEED
            )

    def test_best_effort_pacing_respects_credits(self, small_net):
        net = small_net
        circuit = net.setup_circuit("h0", "h1")
        host = net.host("h0")
        sender = host.senders[circuit.vc]
        allocation = sender.upstream.allocation
        host.send_packet(
            circuit.vc,
            Packet(
                source=host_id(0),
                destination=host_id(1),
                size=48 * (allocation + 20),
            ),
        )
        net.run(200)
        # At no point may more than `allocation` cells be unacknowledged.
        assert sender.upstream.cells_sent - sender.upstream.credits_received <= allocation
        net.run(300_000)
        assert len(net.host("h1").delivered) == 1

    def test_round_robin_across_circuits(self, small_net):
        net = small_net
        a = net.setup_circuit("h0", "h1")
        b = net.setup_circuit("h0", "h1")
        host = net.host("h0")
        for vc in (a.vc, b.vc):
            host.send_packet(
                vc,
                Packet(source=host_id(0), destination=host_id(1), size=480),
            )
        net.run(300_000)
        assert len(net.host("h1").delivered) == 2

    def test_cbr_pacer_spaces_cells(self, small_net):
        net = small_net
        circuit, _ = net.reserve_bandwidth("h0", "h1", 2)  # 2 cells/32-slot frame
        net.run(2_000)
        net.host("h0").send_raw_cells(circuit.vc, 10)
        net.run(200_000)
        arrivals = net.host("h1").cell_arrivals[circuit.vc]
        assert len(arrivals) == 10
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        # The switches re-time cells onto their reserved slots, which may
        # sit adjacent within the frame -- but the *average* spacing must
        # equal the reserved rate (frame/2 ~ 10.9 us at 32 slots), and no
        # gap may exceed a frame plus slack (the jitter bound).
        frame_us = 32 * 0.6817
        mean_gap = sum(gaps) / len(gaps)
        assert mean_gap == pytest.approx(frame_us / 2, rel=0.15)
        assert max(gaps) < 2 * frame_us


class TestReceiving:
    def test_credit_returned_per_best_effort_cell(self, small_net):
        net = small_net
        circuit = net.setup_circuit("h0", "h1")
        net.host("h0").send_packet(
            circuit.vc,
            Packet(source=host_id(0), destination=host_id(1), size=480),
        )
        net.run(100_000)
        h1 = net.host("h1")
        assert h1.cells_received == 10
        assert h1.received_counts[circuit.vc] == 10

    def test_latency_tallies_per_vc(self, small_net):
        net = small_net
        circuit = net.setup_circuit("h0", "h1")
        net.host("h0").send_packet(
            circuit.vc,
            Packet(source=host_id(0), destination=host_id(1), size=96),
        )
        net.run(100_000)
        tally = net.host("h1").cell_latency[circuit.vc]
        assert tally.count == 2
        assert tally.mean > 0


class TestFailover:
    def test_primary_death_switches_to_alternate(self):
        net = line_with_hosts(2)
        # Add an alternate host link: h0 port 1 to s1.
        net_topology_issue = None
        # (line_with_hosts gives single-homed hosts; build a custom one.)
        from repro.net.network import Network
        from repro.net.topology import Topology
        from tests.conftest import fast_host_config, fast_switch_config

        topo = Topology.line(2)
        topo.add_host(0)
        topo.add_host(1)
        topo.connect("h0", "s0", port_a=0, bps=622_000_000)
        topo.connect("h0", "s1", port_a=1, bps=622_000_000)
        topo.connect("h1", "s1", port_a=0, bps=622_000_000)
        net = Network(
            topo,
            seed=4,
            switch_config=fast_switch_config(),
            host_config=fast_host_config(),
        )
        net.start()
        net.run_until_converged(timeout_us=500_000)
        h0 = net.host("h0")
        assert h0.active_port_index == 0
        failovers = []
        h0.failover.subscribe(failovers.append)
        net.fail_link("h0", "s0")
        net.run_until(
            lambda: h0.active_port_index == 1, timeout_us=100_000
        )
        assert failovers == [1]
        # A fresh circuit over the alternate link delivers traffic.
        circuit = net.setup_circuit("h0", "h1")
        h0.send_packet(
            circuit.vc,
            Packet(source=host_id(0), destination=host_id(1), payload=b"alt"),
        )
        net.run(100_000)
        assert [p.payload for p in net.host("h1").delivered] == [b"alt"]


class TestQueueVisibility:
    def test_queued_cells_counts(self, small_net):
        net = small_net
        circuit = net.setup_circuit("h0", "h1")
        host = net.host("h0")
        host.open_circuit(900, host_id(1), send_setup=False)
        host.send_packet(
            circuit.vc,
            Packet(source=host_id(0), destination=host_id(1), size=48 * 5),
        )
        assert host.queued_cells() >= 0  # drains fast; just exercise it
        net.run(50_000)
        assert host.queued_cells() == 0

    def test_close_circuit_idempotent(self, small_net):
        host = small_net.host("h0")
        host.open_circuit(901, host_id(1), send_setup=False)
        host.close_circuit(901)
        host.close_circuit(901)  # no-op
