"""Tests for topology descriptions, generators, and views."""

import random

import pytest

from repro._types import host_id, parse_node_id, switch_id
from repro.constants import FAST_LINK_BPS, SLOW_LINK_BPS
from repro.net.topology import Topology, TopologyError, TopologyView, view_from_edges


class TestConstruction:
    def test_connect_auto_assigns_ports(self):
        topo = Topology()
        topo.add_switch(0)
        topo.add_switch(1)
        edge = topo.connect("s0", "s1")
        assert edge == ((switch_id(0), 0), (switch_id(1), 0))

    def test_duplicate_switch_rejected(self):
        topo = Topology()
        topo.add_switch(0)
        with pytest.raises(TopologyError):
            topo.add_switch(0)

    def test_self_loop_rejected(self):
        topo = Topology()
        topo.add_switch(0)
        with pytest.raises(TopologyError):
            topo.connect("s0", "s0")

    def test_port_exhaustion(self):
        topo = Topology()
        topo.add_switch(0, ports=1)
        topo.add_switch(1)
        topo.add_switch(2)
        topo.connect("s0", "s1")
        with pytest.raises(TopologyError):
            topo.connect("s0", "s2")

    def test_explicit_port_conflict(self):
        topo = Topology()
        topo.add_switch(0)
        topo.add_switch(1)
        topo.add_switch(2)
        topo.connect("s0", "s1", port_a=3)
        with pytest.raises(TopologyError):
            topo.connect("s0", "s2", port_a=3)

    def test_unknown_node_rejected(self):
        topo = Topology()
        topo.add_switch(0)
        with pytest.raises(TopologyError):
            topo.connect("s0", "s9")

    def test_host_links_default_slow_trunks_fast(self):
        topo = Topology()
        topo.add_switch(0)
        topo.add_switch(1)
        topo.add_host(0)
        topo.connect("s0", "s1")
        topo.connect("h0", "s0")
        speeds = {
            tuple(sorted(str(n) for (n, _) in spec.endpoints)): spec.bps
            for spec in topo.cables()
        }
        assert speeds[("s0", "s1")] == FAST_LINK_BPS
        assert speeds[("h0", "s0")] == SLOW_LINK_BPS

    def test_parallel_cables_allowed(self):
        topo = Topology()
        topo.add_switch(0)
        topo.add_switch(1)
        topo.connect("s0", "s1")
        topo.connect("s0", "s1")
        assert len(topo.switch_edges()) == 2


class TestQueries:
    def test_neighbors(self):
        topo = Topology.line(3)
        assert topo.neighbors("s1") == [switch_id(0), switch_id(2)]

    def test_is_switch_connected(self):
        topo = Topology.line(4)
        assert topo.is_switch_connected()
        disconnected = Topology()
        disconnected.add_switch(0)
        disconnected.add_switch(1)
        assert not disconnected.is_switch_connected()

    def test_host_attachments_listed(self):
        topo = Topology()
        topo.add_switch(0)
        topo.add_host(3)
        topo.connect("h3", "s0")
        assert len(topo.host_attachments()) == 1
        assert topo.hosts() == [host_id(3)]


class TestGenerators:
    def test_line(self):
        topo = Topology.line(5)
        assert len(topo.switches()) == 5
        assert len(topo.switch_edges()) == 4

    def test_ring(self):
        topo = Topology.ring(5)
        assert len(topo.switch_edges()) == 5

    @pytest.mark.parametrize("n", [0, 1, 2])
    def test_ring_too_small_rejected(self, n):
        # ring(2) used to silently double-cable the same switch pair
        # (a two-edge "ring"); anything below 3 is now an error.
        with pytest.raises(TopologyError, match="at least 3"):
            Topology.ring(n)

    def test_ring_of_three_is_smallest(self):
        topo = Topology.ring(3)
        assert len(topo.switch_edges()) == 3

    def test_star(self):
        topo = Topology.star(6)
        assert len(topo.switches()) == 7
        assert len(topo.neighbors("s0")) == 6

    def test_grid(self):
        topo = Topology.grid(3, 4)
        assert len(topo.switches()) == 12
        assert len(topo.switch_edges()) == 3 * 3 + 2 * 4  # 17

    def test_random_connected_is_connected(self):
        for seed in range(5):
            topo = Topology.random_connected(
                12, extra_edges=6, rng=random.Random(seed)
            )
            assert topo.is_switch_connected()
            assert len(topo.switch_edges()) >= 11

    def test_random_connected_records_full_redundancy(self):
        topo = Topology.random_connected(
            12, extra_edges=4, rng=random.Random(3)
        )
        assert topo.extra_edges_requested == 4
        assert topo.extra_edges_added == 4

    def test_random_connected_shortfall_recorded_and_warned(self):
        # Two switches can hold at most one cable between them: the
        # spanning tree uses it, so every redundant cable request must
        # fall short -- and the caller must be able to see that instead
        # of silently benchmarking a thinner fabric than requested.
        with pytest.warns(RuntimeWarning, match="redundant cables"):
            topo = Topology.random_connected(
                2, extra_edges=5, rng=random.Random(0)
            )
        assert topo.extra_edges_requested == 5
        assert topo.extra_edges_added == 0
        assert len(topo.switch_edges()) == 1

    def test_src_lan_hosts_dual_homed(self):
        topo = Topology.src_lan(n_switches=6, n_hosts=8, rng=random.Random(1))
        assert len(topo.hosts()) == 8
        view = topo.view()
        for host, attachments in view.host_ports().items():
            assert len(attachments) == 2
            switches = {s for _, s, _ in attachments}
            assert len(switches) == 2  # two *different* switches


class TestTopologyView:
    def test_view_matches_description(self):
        topo = Topology.line(3)
        view = topo.view()
        assert len(view) == 2
        assert view.switches() == [switch_id(0), switch_id(1), switch_id(2)]

    def test_equality_is_structural(self):
        a = Topology.line(3).view()
        b = Topology.line(3).view()
        assert a == b

    def test_with_and_without_edge(self):
        view = Topology.line(3).view()
        edge = sorted(view.edges)[0]
        smaller = view.without_edge(edge)
        assert len(smaller) == 1
        assert smaller.with_edge(edge) == view

    def test_merge(self):
        view = Topology.line(3).view()
        edges = sorted(view.edges)
        left = TopologyView(frozenset(edges[:1]))
        right = TopologyView(frozenset(edges[1:]))
        assert left.merge(right) == view

    def test_switch_adjacency_symmetry(self):
        view = Topology.grid(2, 2).view()
        adjacency = view.switch_adjacency()
        for node, entries in adjacency.items():
            for port, neighbor, neighbor_port in entries:
                reverse = adjacency[neighbor]
                assert (neighbor_port, node, port) in reverse

    def test_view_from_edges_normalizes(self):
        a = (switch_id(1), 0)
        b = (switch_id(0), 0)
        view = view_from_edges([(a, b)])
        ((first, _), _) = next(iter(view.edges))
        assert first == switch_id(0)


def test_parse_node_id_roundtrip():
    assert parse_node_id("s3") == switch_id(3)
    assert parse_node_id("h12") == host_id(12)
    assert parse_node_id(switch_id(1)) == switch_id(1)
    with pytest.raises(ValueError):
        parse_node_id("x9")
    with pytest.raises(ValueError):
        parse_node_id("s")
