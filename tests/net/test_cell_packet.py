"""Tests for cells and packets."""

import pytest

from repro._types import host_id
from repro.net.cell import Cell, CellKind, TrafficClass, make_control_cell
from repro.net.packet import Packet


class TestCell:
    def test_defaults(self):
        cell = Cell(vc=5)
        assert cell.is_data
        assert not cell.is_guaranteed
        assert cell.kind is CellKind.DATA

    def test_uids_unique(self):
        assert Cell(vc=1).uid != Cell(vc=1).uid

    def test_control_kinds_flagged(self):
        assert CellKind.CREDIT.is_control
        assert CellKind.PING.is_control
        assert not CellKind.DATA.is_control

    def test_make_control_cell_rejects_data(self):
        with pytest.raises(ValueError):
            make_control_cell(1, CellKind.DATA, None)

    def test_guaranteed_flag(self):
        cell = Cell(vc=1, traffic_class=TrafficClass.GUARANTEED)
        assert cell.is_guaranteed


class TestPacket:
    def test_size_defaults_to_payload_length(self):
        packet = Packet(host_id(0), host_id(1), payload=b"abc")
        assert packet.size == 3

    def test_size_may_exceed_payload(self):
        packet = Packet(host_id(0), host_id(1), payload=b"", size=1500)
        assert packet.size == 1500

    def test_size_below_payload_rejected(self):
        with pytest.raises(ValueError):
            Packet(host_id(0), host_id(1), payload=b"abcd", size=2)

    def test_latency_requires_delivery(self):
        packet = Packet(host_id(0), host_id(1), payload=b"x", created_at=5.0)
        with pytest.raises(ValueError):
            packet.latency
        packet.delivered_at = 12.5
        assert packet.latency == pytest.approx(7.5)

    def test_uids_unique(self):
        a = Packet(host_id(0), host_id(1))
        b = Packet(host_id(0), host_id(1))
        assert a.uid != b.uid
