"""Tests for links and ports: serialization, latency, failure, errors."""

import random

import pytest

from repro._types import host_id, switch_id
from repro.constants import CELL_BITS
from repro.net.cell import Cell
from repro.net.link import Link, LinkState
from repro.net.node import Node
from repro.net.port import Port, PortError
from repro.sim.kernel import Simulator


class RecordingNode(Node):
    def __init__(self, sim, node_id, n_ports=2):
        super().__init__(sim, node_id, n_ports)
        self.received = []

    def on_cell(self, port, cell):
        self.received.append((self.sim.now, port.index, cell))


def make_pair(sim, length_km=1.0, bps=622_000_000):
    a = RecordingNode(sim, switch_id(0))
    b = RecordingNode(sim, switch_id(1))
    link = Link(sim, a.port(0), b.port(0), length_km=length_km, bps=bps)
    return a, b, link


def test_delivery_time_is_serialization_plus_propagation():
    sim = Simulator()
    a, b, link = make_pair(sim, length_km=1.0)
    a.port(0).send(Cell(vc=1))
    sim.run()
    expected = CELL_BITS / 622_000_000 * 1e6 + 5.0  # tx + 1 km propagation
    assert b.received[0][0] == pytest.approx(expected)


def test_fifo_order_per_direction():
    sim = Simulator()
    a, b, link = make_pair(sim)
    for i in range(5):
        a.port(0).send(Cell(vc=i))
    sim.run()
    assert [cell.vc for _, _, cell in b.received] == [0, 1, 2, 3, 4]


def test_serialization_spaces_cells_by_cell_time():
    sim = Simulator()
    a, b, link = make_pair(sim, length_km=0.0)
    a.port(0).send(Cell(vc=0))
    a.port(0).send(Cell(vc=1))
    sim.run()
    gap = b.received[1][0] - b.received[0][0]
    assert gap == pytest.approx(link.cell_time_us)


def test_full_duplex_directions_independent():
    sim = Simulator()
    a, b, link = make_pair(sim)
    a.port(0).send(Cell(vc=1))
    b.port(0).send(Cell(vc=2))
    sim.run()
    assert len(a.received) == 1 and len(b.received) == 1


def test_dead_link_drops_cells():
    sim = Simulator()
    a, b, link = make_pair(sim)
    link.fail()
    a.port(0).send(Cell(vc=1))
    sim.run()
    assert b.received == []
    assert link.cells_dropped == 1
    assert link.state is LinkState.DEAD


def test_cells_in_flight_lost_when_link_dies():
    sim = Simulator()
    a, b, link = make_pair(sim, length_km=10.0)  # 50us propagation
    a.port(0).send(Cell(vc=1))
    sim.schedule(10.0, link.fail)
    sim.run()
    assert b.received == []


def test_restore_resumes_delivery():
    sim = Simulator()
    a, b, link = make_pair(sim)
    link.fail()
    link.restore()
    a.port(0).send(Cell(vc=1))
    sim.run()
    assert len(b.received) == 1


def test_state_observers_notified_once_per_change():
    sim = Simulator()
    a, b, link = make_pair(sim)
    changes = []
    link.state_observers.append(lambda l, s: changes.append(s))
    link.fail()
    link.fail()  # no-op
    link.restore()
    assert changes == [LinkState.DEAD, LinkState.WORKING]


def test_error_rate_drops_fraction():
    sim = Simulator()
    a, b, link = make_pair(sim, length_km=0.0)
    link.set_error_rate(0.5)
    link._rng = random.Random(42)
    for i in range(200):
        a.port(0).send(Cell(vc=i))
    sim.run()
    assert 60 < len(b.received) < 140
    assert link.cells_corrupted == 200 - len(b.received)


def test_error_rate_validation():
    sim = Simulator()
    _, _, link = make_pair(sim)
    with pytest.raises(ValueError):
        link.set_error_rate(1.5)


def test_round_trip_includes_both_directions():
    sim = Simulator()
    _, _, link = make_pair(sim, length_km=2.0)
    assert link.round_trip_us == pytest.approx(2 * (10.0 + link.cell_time_us))


def test_port_send_unconnected_raises():
    sim = Simulator()
    node = RecordingNode(sim, switch_id(0))
    with pytest.raises(PortError):
        node.port(1).send(Cell(vc=1))


def test_port_double_cable_rejected():
    sim = Simulator()
    a = RecordingNode(sim, switch_id(0))
    b = RecordingNode(sim, switch_id(1))
    c = RecordingNode(sim, switch_id(2))
    Link(sim, a.port(0), b.port(0))
    with pytest.raises(PortError):
        Link(sim, a.port(0), c.port(0))


def test_peer_resolution():
    sim = Simulator()
    a, b, link = make_pair(sim)
    assert a.port(0).peer() is b.port(0)
    assert b.port(0).peer() is a.port(0)
    assert a.port(1).peer() is None


def test_can_transmit_at_reflects_serialization():
    sim = Simulator()
    a, b, link = make_pair(sim, length_km=0.0)
    assert a.port(0).can_transmit_at(0.0)
    a.port(0).send(Cell(vc=1))
    assert not a.port(0).can_transmit_at(0.0)
    sim.run(until=link.cell_time_us + 0.01)
    assert a.port(0).can_transmit_at(sim.now)


def test_can_transmit_false_when_dead_or_uncabled():
    sim = Simulator()
    a, b, link = make_pair(sim)
    link.fail()
    assert not a.port(0).can_transmit_at(0.0)
    assert not a.port(1).can_transmit_at(0.0)


def test_node_neighbor_ids():
    sim = Simulator()
    a = RecordingNode(sim, switch_id(0), n_ports=3)
    b = RecordingNode(sim, host_id(5))
    Link(sim, a.port(2), b.port(0))
    assert a.neighbor_ids() == {2: host_id(5)}
    assert a.free_port() is a.port(0)


def test_negative_length_rejected():
    sim = Simulator()
    a = RecordingNode(sim, switch_id(0))
    b = RecordingNode(sim, switch_id(1))
    with pytest.raises(ValueError):
        Link(sim, a.port(0), b.port(0), length_km=-1.0)


def test_default_link_rngs_are_decorrelated():
    """Regression: every Link used to default to ``random.Random(0)``, so
    all links drew *identical* error streams and injected errors were
    perfectly correlated across the network.  Two links with default RNGs
    and the same error rate must drop different cells."""
    sim = Simulator()
    nodes = [RecordingNode(sim, switch_id(i)) for i in range(4)]
    link_ab = Link(sim, nodes[0].port(0), nodes[1].port(0), length_km=0.0)
    link_cd = Link(sim, nodes[2].port(0), nodes[3].port(0), length_km=0.0)
    link_ab.set_error_rate(0.5)
    link_cd.set_error_rate(0.5)
    for seq in range(200):
        nodes[0].port(0).send(Cell(vc=1, seq=seq))
        nodes[2].port(0).send(Cell(vc=1, seq=seq))
    sim.run()
    survivors_b = [cell.seq for _, _, cell in nodes[1].received]
    survivors_d = [cell.seq for _, _, cell in nodes[3].received]
    assert survivors_b  # the loss is partial, not total
    assert survivors_d
    assert survivors_b != survivors_d  # streams are decorrelated


def test_default_link_rng_is_reproducible():
    """The derived per-link stream is keyed by the endpoint labels, so an
    identical build drops the identical cells."""

    def run_once():
        sim = Simulator()
        a = RecordingNode(sim, switch_id(0))
        b = RecordingNode(sim, switch_id(1))
        link = Link(sim, a.port(0), b.port(0), length_km=0.0)
        link.set_error_rate(0.3)
        for seq in range(100):
            a.port(0).send(Cell(vc=1, seq=seq))
        sim.run()
        return [cell.seq for _, _, cell in b.received]

    assert run_once() == run_once()
