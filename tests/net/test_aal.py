"""Tests for segmentation and reassembly (the controller's SAR path)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._types import host_id
from repro.constants import CELL_PAYLOAD_BYTES
from repro.net.aal import Reassembler, ReassemblyError, Segmenter
from repro.net.packet import Packet


def roundtrip(payload: bytes, vc: int = 20) -> Packet:
    packet = Packet(host_id(0), host_id(1), payload=payload)
    cells = Segmenter(vc).segment(packet, now=1.0)
    reassembler = Reassembler()
    rebuilt = None
    for cell in cells:
        result = reassembler.accept(cell)
        if result is not None:
            assert cell is cells[-1]
            rebuilt = result
    assert rebuilt is not None
    return rebuilt


def test_single_cell_packet():
    rebuilt = roundtrip(b"hello")
    assert rebuilt.payload == b"hello"


def test_empty_packet_still_uses_one_cell():
    packet = Packet(host_id(0), host_id(1), payload=b"")
    cells = Segmenter(9).segment(packet)
    assert len(cells) == 1
    assert cells[0].end_of_packet


def test_exact_boundary_sizes():
    for n_cells in (1, 2, 3):
        payload = bytes(range(256)) * 10
        payload = payload[: CELL_PAYLOAD_BYTES * n_cells]
        packet = Packet(host_id(0), host_id(1), payload=payload)
        cells = Segmenter(9).segment(packet)
        assert len(cells) == n_cells
        assert roundtrip(payload).payload == payload


def test_cell_count_matches_ceiling():
    segmenter = Segmenter(5)
    packet = Packet(host_id(0), host_id(1), payload=b"", size=1500)
    assert segmenter.cell_count(packet) == 32  # ceil(1500/48)


def test_sequence_numbers_and_eop_flags():
    payload = b"x" * (CELL_PAYLOAD_BYTES * 2 + 1)
    packet = Packet(host_id(0), host_id(1), payload=payload)
    cells = Segmenter(5).segment(packet)
    assert [c.seq for c in cells] == [0, 1, 2]
    assert [c.end_of_packet for c in cells] == [False, False, True]
    assert all(c.packet_id == packet.uid for c in cells)


def test_metadata_preserved():
    packet = Packet(host_id(3), host_id(7), payload=b"data", created_at=0.0)
    cells = Segmenter(11).segment(packet, now=99.0)
    assert all(c.created_at == 99.0 for c in cells)
    reassembler = Reassembler()
    rebuilt = None
    for cell in cells:
        rebuilt = reassembler.accept(cell) or rebuilt
    assert rebuilt.source == host_id(3)
    assert rebuilt.destination == host_id(7)
    assert rebuilt.uid == packet.uid


def test_gap_detected():
    payload = b"y" * (CELL_PAYLOAD_BYTES * 3)
    packet = Packet(host_id(0), host_id(1), payload=payload)
    cells = Segmenter(5).segment(packet)
    reassembler = Reassembler()
    reassembler.accept(cells[0])
    with pytest.raises(ReassemblyError):
        reassembler.accept(cells[2])  # cell 1 lost


def test_state_reset_after_gap_error():
    payload = b"y" * (CELL_PAYLOAD_BYTES * 2)
    packet = Packet(host_id(0), host_id(1), payload=payload)
    cells = Segmenter(5).segment(packet)
    reassembler = Reassembler()
    reassembler.accept(cells[0])
    with pytest.raises(ReassemblyError):
        reassembler.accept(cells[0])  # duplicate seq 0
    # A fresh packet on the same VC now succeeds.
    fresh = Packet(host_id(0), host_id(1), payload=b"ok")
    for cell in Segmenter(5).segment(fresh):
        result = reassembler.accept(cell)
    assert result.payload == b"ok"


def test_interleaved_packets_on_one_vc_detected():
    a = Packet(host_id(0), host_id(1), payload=b"a" * (CELL_PAYLOAD_BYTES * 2))
    b = Packet(host_id(0), host_id(1), payload=b"b" * (CELL_PAYLOAD_BYTES * 2))
    cells_a = Segmenter(5).segment(a)
    cells_b = Segmenter(5).segment(b)
    reassembler = Reassembler()
    reassembler.accept(cells_a[0])
    cell = cells_b[1]
    with pytest.raises(ReassemblyError):
        reassembler.accept(cell)


def test_different_vcs_reassemble_independently():
    a = Packet(host_id(0), host_id(1), payload=b"a" * 100)
    b = Packet(host_id(2), host_id(1), payload=b"b" * 100)
    cells_a = Segmenter(5).segment(a)
    cells_b = Segmenter(6).segment(b)
    reassembler = Reassembler()
    # interleave the two circuits
    done = []
    for pair in zip(cells_a, cells_b):
        for cell in pair:
            result = reassembler.accept(cell)
            if result:
                done.append(result.payload)
    for cell in cells_a[len(cells_b):] + cells_b[len(cells_a):]:
        result = reassembler.accept(cell)
        if result:
            done.append(result.payload)
    assert sorted(done) == [b"a" * 100, b"b" * 100]


def test_abort_discards_partial():
    payload = b"z" * (CELL_PAYLOAD_BYTES * 3)
    packet = Packet(host_id(0), host_id(1), payload=payload)
    cells = Segmenter(5).segment(packet)
    reassembler = Reassembler()
    reassembler.accept(cells[0])
    reassembler.accept(cells[1])
    assert reassembler.abort(5) == 2
    assert reassembler.pending_cells(5) == 0


def test_non_data_cell_rejected():
    from repro.net.cell import Cell, CellKind

    reassembler = Reassembler()
    with pytest.raises(ReassemblyError):
        reassembler.accept(Cell(vc=1, kind=CellKind.CREDIT))


@settings(max_examples=50, deadline=None)
@given(payload=st.binary(min_size=0, max_size=2000))
def test_roundtrip_property(payload):
    assert roundtrip(payload).payload == payload


def test_lost_eop_cell_corrupts_exactly_one_packet():
    """Regression: when a packet's final cell is dropped, the next
    packet's seq-0 cell used to hit the stale partial, raise, and be
    discarded too -- so its seq-1 cell mismatched the emptied buffer and
    a single lost cell corrupted *two* packets.  The reassembler now
    resynchronizes on the new packet's head."""
    a = Packet(host_id(0), host_id(1), payload=b"a" * (CELL_PAYLOAD_BYTES * 2))
    b = Packet(host_id(0), host_id(1), payload=b"b" * (CELL_PAYLOAD_BYTES * 2))
    cells_a = Segmenter(5).segment(a)
    cells_b = Segmenter(5).segment(b)
    reassembler = Reassembler()
    reassembler.accept(cells_a[0])
    # cells_a[1] -- the end-of-packet cell -- is lost on the wire.
    delivered = []
    for cell in cells_b:
        result = reassembler.accept(cell)  # must not raise
        if result is not None:
            delivered.append(result)
    assert [p.payload for p in delivered] == [b.payload]
    assert reassembler.packets_aborted == 1


def test_resync_delivers_a_single_cell_packet():
    """The resynchronizing cell may itself be a whole packet (seq 0 with
    the end-of-packet flag): it must be delivered, not just buffered."""
    a = Packet(host_id(0), host_id(1), payload=b"a" * (CELL_PAYLOAD_BYTES * 2))
    b = Packet(host_id(0), host_id(1), payload=b"tiny")
    reassembler = Reassembler()
    reassembler.accept(Segmenter(5).segment(a)[0])  # EOP of `a` lost
    result = reassembler.accept(Segmenter(5).segment(b)[0])
    assert result is not None and result.payload == b"tiny"
    assert reassembler.packets_aborted == 1


def test_duplicate_head_of_same_packet_still_raises():
    """Resynchronization applies only to a *different* packet's head; a
    duplicated seq-0 cell of the packet being assembled is still a
    sequence error."""
    a = Packet(host_id(0), host_id(1), payload=b"a" * (CELL_PAYLOAD_BYTES * 2))
    cells = Segmenter(5).segment(a)
    reassembler = Reassembler()
    reassembler.accept(cells[0])
    with pytest.raises(ReassemblyError):
        reassembler.accept(cells[0])
