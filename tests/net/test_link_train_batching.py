"""Cell-train batching must be invisible except in event counts.

The contract: a ``batch_trains`` link delivers/drops/corrupts exactly
the cells the per-cell schedule would, in the same FIFO order, under
every adjudication change mid-flight -- link cuts, restores, and
``drop_filter`` windows opening or closing while a train is on the
wire.  Only *when* a cell surfaces (within the train span) and how many
kernel events that takes may differ.
"""

import pytest

from repro._types import parse_node_id
from repro.conform.oracle import (
    LINK_PROFILES,
    compare_link_delivery,
    link_sweep,
)
from repro.net.cell import Cell, CellKind
from repro.net.link import Link
from repro.net.network import Network
from repro.net.node import Node
from repro.net.packet import Packet
from repro.net.topology import Topology
from repro.sim.kernel import Simulator
from tests.conftest import fast_host_config, fast_switch_config


class Sink(Node):
    def __init__(self, sim, name):
        super().__init__(sim, parse_node_id(name), 1)
        self.received = []

    def on_cell(self, port, cell):
        self.received.append((self.sim.now, cell.payload))


def make_link(batch, length_km=2.0, max_train_cells=64):
    sim = Simulator()
    a = Sink(sim, "h0")
    b = Sink(sim, "h1")
    link = Link(
        sim,
        a.port(0),
        b.port(0),
        length_km=length_km,
        batch_trains=batch,
        max_train_cells=max_train_cells,
    )
    return sim, a, b, link


def burst(link, count, direction=0, kind=CellKind.DATA, start_payload=0):
    for i in range(count):
        link.transmit(direction, Cell(vc=0, kind=kind, payload=start_payload + i))


class TestPlainTrains:
    def test_same_cells_in_same_order(self):
        outcomes = []
        for batch in (False, True):
            sim, _, b, link = make_link(batch)
            burst(link, 20)
            sim.run()
            outcomes.append([p for _, p in b.received])
        assert outcomes[0] == outcomes[1] == list(range(20))

    def test_batching_saves_events(self):
        sim, _, b, link = make_link(True)
        burst(link, 32)
        sim.run()
        assert len(b.received) == 32
        # One fire at the head arrival + one at the tail: 30 events saved.
        assert link.train_events_saved == 30

    def test_cells_never_surface_before_arrival(self):
        """Batching may delay a cell within the train span, never
        deliver it early."""
        reference = {}
        sim, _, b, link = make_link(False)
        burst(link, 16)
        sim.run()
        for when, payload in b.received:
            reference[payload] = when
        sim, _, b, link = make_link(True)
        burst(link, 16)
        sim.run()
        for when, payload in b.received:
            assert when >= reference[payload] - 1e-9

    def test_paced_stream_degrades_to_per_cell(self):
        """Cells spaced wider than the serialization time never train
        up; batching must still deliver them all, one fire each."""
        sim, _, b, link = make_link(True)
        for i in range(10):
            sim.schedule_at(
                i * 50.0 + 1.0,
                lambda i=i: link.transmit(0, Cell(vc=0, payload=i)),
            )
        sim.run()
        assert [p for _, p in b.received] == list(range(10))
        assert link.train_events_saved == 0

    def test_max_train_cells_bounds_lateness(self):
        sim, _, b, link = make_link(True, max_train_cells=4)
        burst(link, 16)
        sim.run()
        assert len(b.received) == 16
        span = 4 * link.cell_time_us + 1e-9
        for when, payload in b.received:
            nominal = (payload + 1) * link.cell_time_us + link.latency_us
            assert when - nominal <= span


class TestFaultsMidTrain:
    def cut_outcome(self, batch, cut_at, restore_at=None):
        sim, _, b, link = make_link(batch)
        burst(link, 32)
        sim.schedule_at(cut_at, link.fail)
        if restore_at is not None:
            sim.schedule_at(restore_at, link.restore)
        sim.run()
        return (
            [p for _, p in b.received],
            link.cells_delivered,
            link.cells_dropped,
            link.data_cells_dropped,
        )

    def test_mid_train_cut_splits_identically(self):
        # 32 cells serialize over ~22us + 10us propagation; cut lands
        # with part of the train delivered and part in flight.
        cut_at = 10.0 + 12 * 0.682
        assert self.cut_outcome(False, cut_at) == self.cut_outcome(True, cut_at)

    def test_cut_then_restore_mid_train(self):
        """Cells arriving inside the dead window die; cells arriving
        after the restore live -- batched or not."""
        cut_at = 10.0 + 8 * 0.682
        restore_at = cut_at + 6 * 0.682
        reference = self.cut_outcome(False, cut_at, restore_at)
        candidate = self.cut_outcome(True, cut_at, restore_at)
        assert reference == candidate
        delivered_payloads = reference[0]
        assert delivered_payloads, "some of the train must get through"
        assert len(delivered_payloads) < 32, "the cut must bite"

    def test_filter_window_mid_train(self):
        """A drop_filter opening and closing mid-train corrupts exactly
        the cells whose arrivals fall inside the window."""

        def run(batch):
            sim, _, b, link = make_link(batch)
            burst(link, 16, kind=CellKind.CREDIT)
            burst(link, 16, kind=CellKind.DATA, start_payload=100)
            window_open = 10.0 + 10 * 0.682
            window_close = window_open + 8 * 0.682
            sim.schedule_at(
                window_open,
                lambda: setattr(
                    link,
                    "drop_filter",
                    lambda cell: cell.kind is CellKind.CREDIT,
                ),
            )
            sim.schedule_at(
                window_close, lambda: setattr(link, "drop_filter", None)
            )
            sim.run()
            return [p for _, p in b.received], link.cells_corrupted

        reference = run(False)
        candidate = run(True)
        assert reference == candidate
        assert reference[1] > 0, "the window must corrupt something"

    def test_error_rate_change_flushes_first(self):
        """set_error_rate(1.0) mid-train may only corrupt cells that
        arrive after the change."""

        def run(batch):
            sim, _, b, link = make_link(batch)
            burst(link, 16)
            sim.schedule_at(10.0 + 8 * 0.682, lambda: link.set_error_rate(1.0))
            sim.run()
            return [p for _, p in b.received], link.cells_corrupted

        assert run(False) == run(True)


class TestOracle:
    @pytest.mark.parametrize("seed", range(10))
    def test_differential_scripts_agree(self, seed):
        divergence = compare_link_delivery(seed)
        assert divergence is None, str(divergence)

    @pytest.mark.parametrize("profile", LINK_PROFILES)
    @pytest.mark.parametrize("seed", range(5))
    def test_solution_profiles_agree(self, seed, profile):
        """The solution-shaped fault scripts (admin fail/restore cycles,
        guarded once-only corruption with link-local resends) must also
        be batching-invariant, cell for cell and counter for counter."""
        divergence = compare_link_delivery(seed, profile=profile)
        assert divergence is None, str(divergence)

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            compare_link_delivery(0, profile="bogus")

    def test_sweep_records(self):
        divergences, records = link_sweep(range(3), n_bursts=20)
        assert not divergences
        assert all(record["agreed"] for record in records)
        # One record per (seed, profile); every profile is swept.
        assert len(records) == 3 * len(LINK_PROFILES)
        assert {r["profile"] for r in records} == set(LINK_PROFILES)


class TestWholeNetwork:
    def test_packet_delivery_unchanged_end_to_end(self):
        """A batched network delivers the same packets over a circuit as
        an unbatched one (event schedules differ; outcomes must not)."""

        def run(batch):
            topo = Topology.grid(2, 2)
            topo.add_host(0)
            topo.add_host(1)
            topo.connect("h0", "s0", port_a=0)
            topo.connect("h1", "s3", port_a=0)
            net = Network(
                topo,
                seed=4,
                switch_config=fast_switch_config(),
                host_config=fast_host_config(),
                batch_cell_trains=batch,
            )
            net.start()
            net.run_until(net.fully_reconfigured, timeout_us=500_000)
            circuit = net.setup_circuit("h0", "h1")
            source, sink = net.host("h0"), net.host("h1")
            for index in range(20):
                source.send_packet(
                    circuit.vc,
                    Packet(
                        source=parse_node_id("h0"),
                        destination=parse_node_id("h1"),
                        payload=bytes([index]) * 96,
                    ),
                )
            net.run(100_000)
            assert sink.reassembly_errors == 0
            return sorted(packet.payload[:1] for packet in sink.delivered)

        assert run(False) == run(True)
