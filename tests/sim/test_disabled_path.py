"""The observability layer's disabled-path cost must stay at zero.

The contract (DESIGN.md, observability): with no tracer and no profiler
attached, the kernel runs its uninstrumented class-level loop, the
flight recorder is never consulted per event, and journey guards are a
single ``cell.trace_ctx is not None`` attribute check.  These tests pin
that down with ``tracemalloc``: a run with instrumentation disabled
must allocate *nothing* from ``repro/obs`` code.
"""

import tracemalloc

from repro.obs import FlightRecorder
from repro.sim.kernel import Simulator

from tests.conftest import converged_line

_OBS_FILTERS = [tracemalloc.Filter(True, "*/repro/obs/*")]


def _obs_bytes(snapshot) -> int:
    return sum(
        stat.size
        for stat in snapshot.filter_traces(_OBS_FILTERS).statistics("lineno")
    )


def test_recorder_attachment_keeps_the_plain_event_loop():
    """A FlightRecorder must NOT trigger the instrumented-loop swap."""
    sim = Simulator()
    sim.recorder = FlightRecorder()
    sim.schedule_at(1.0, lambda: None)
    sim.run()
    assert "step" not in sim.__dict__
    assert "run" not in sim.__dict__


def test_event_storm_with_recorder_allocates_nothing_in_obs():
    """The kernel hot loop with an (idle) recorder: zero obs allocations."""
    sim = Simulator()
    sim.recorder = FlightRecorder()
    for k in range(5_000):
        sim.schedule_at(float(k), lambda: None)
    tracemalloc.start()
    try:
        sim.run()
        snapshot = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    assert _obs_bytes(snapshot) == 0


def test_quiet_network_steady_state_allocates_nothing_in_obs():
    """A converged, idle network (keepalives only, recorder wired in,
    no tracer, no journey contexts) must never touch repro/obs code."""
    net = converged_line(3)
    net.run(20_000.0)  # flush any residual post-boot transitions
    assert net.sim.recorder is net.recorder  # always-on, but idle
    before_total = net.recorder.records_total
    tracemalloc.start()
    try:
        net.run(50_000.0)
        snapshot = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    assert _obs_bytes(snapshot) == 0
    # quiet steady state produced no protocol transitions to record
    assert net.recorder.records_total == before_total


def test_detaching_instrumentation_restores_class_methods():
    from repro.obs import SubsystemProfiler, Tracer

    sim = Simulator()
    sim.tracer = Tracer()
    sim.profiler = SubsystemProfiler()
    assert "step" in sim.__dict__ and "run" in sim.__dict__
    sim.tracer = None
    assert "step" in sim.__dict__  # profiler still attached
    sim.profiler = None
    assert "step" not in sim.__dict__
    assert "run" not in sim.__dict__
