"""Tests for named RNG streams."""

from repro.sim.random import RandomStreams


def test_same_seed_same_sequence():
    a = RandomStreams(7).stream("pim")
    b = RandomStreams(7).stream("pim")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_differ():
    streams = RandomStreams(7)
    a = streams.stream("pim")
    b = streams.stream("workload")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_different_seeds_differ():
    a = RandomStreams(1).stream("x")
    b = RandomStreams(2).stream("x")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_stream_is_cached():
    streams = RandomStreams(0)
    assert streams.stream("s") is streams.stream("s")


def test_adding_streams_does_not_perturb_others():
    lonely = RandomStreams(3)
    sequence = [lonely.stream("target").random() for _ in range(5)]

    crowded = RandomStreams(3)
    crowded.stream("other1").random()
    crowded.stream("other2").random()
    assert [crowded.stream("target").random() for _ in range(5)] == sequence


def test_fork_is_independent_and_deterministic():
    a = RandomStreams(5).fork("child")
    b = RandomStreams(5).fork("child")
    assert a.seed == b.seed
    parent = RandomStreams(5)
    assert parent.stream("x").random() != a.stream("x").random() or True
    # forks with different names diverge
    c = RandomStreams(5).fork("other")
    assert c.seed != a.seed
