"""Tests for the lazy-cancel heap compaction and O(1) ``pending()``.

``Event.cancel()`` marks events dead in place; the heap sheds them
lazily on pop, and ``Simulator`` compacts wholesale once more than half
of a large heap is cancelled.  ``pending()`` is a live counter, not a
heap scan.  These tests pin the counter bookkeeping (including
double-cancel and cancel-after-execution) and the compaction trigger,
ordering preservation, and observability via ``heap_size`` /
``compactions``.
"""

import random

from repro.sim.kernel import Simulator


def test_pending_is_live_counter():
    sim = Simulator()
    events = [sim.schedule(i + 1.0, lambda: None) for i in range(10)]
    assert sim.pending() == 10
    events[3].cancel()
    events[7].cancel()
    assert sim.pending() == 8
    sim.run()
    assert sim.pending() == 0
    assert sim.events_executed == 8


def test_double_cancel_decrements_once():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    event.cancel()
    event.cancel()
    event.cancel()
    assert sim.pending() == 1
    sim.run()
    assert sim.events_executed == 1


def test_cancel_after_execution_is_harmless():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.pending() == 0
    event.cancel()  # already executed: must not underflow the counter
    assert sim.pending() == 0
    sim.schedule(2.0, lambda: None)
    assert sim.pending() == 1


def test_compaction_triggers_and_shrinks_heap():
    sim = Simulator()
    events = [sim.schedule(i + 1.0, lambda: None) for i in range(200)]
    assert sim.heap_size == 200
    assert sim.compactions == 0
    # Cancel three quarters: crosses the >50%-cancelled threshold
    # mid-loop (at 101 of 200), compacting down to the 99 then-live
    # events; the remaining cancels stay lazily marked below threshold.
    for event in events[:150]:
        event.cancel()
    assert sim.compactions == 1
    assert sim.pending() == 50
    assert sim.heap_size == 99
    sim.run()
    assert sim.events_executed == 50


def test_small_heaps_never_compact():
    sim = Simulator()
    events = [sim.schedule(i + 1.0, lambda: None) for i in range(20)]
    for event in events:
        event.cancel()
    assert sim.compactions == 0


def test_compaction_preserves_execution_order():
    sim = Simulator()
    fired = []
    rng = random.Random(0)
    events = []
    for index in range(500):
        when = rng.random() * 100.0
        events.append(
            sim.schedule_at(when, lambda index=index: fired.append(index))
        )
    keep = {index for index in range(500) if index % 7 == 0}
    for index, event in enumerate(events):
        if index not in keep:
            event.cancel()
    assert sim.compactions >= 1
    sim.run()
    assert sorted(fired) == sorted(keep)
    # Survivors fired in time order despite the heapify.
    times = sorted((events[index].time, index) for index in keep)
    assert fired == [index for _, index in times]


def test_pending_constant_through_storm():
    """pending() stays correct while cancels race scheduled work."""
    sim = Simulator()
    executed = [0]

    def fire():
        executed[0] += 1

    rng = random.Random(1)
    events = [sim.schedule_at(rng.random() * 50.0, fire) for _ in range(1000)]
    live = 1000
    for index, event in enumerate(events):
        if index % 3:
            event.cancel()
            live -= 1
        assert sim.pending() == live
    sim.run()
    assert executed[0] == live
