"""Tests for the kernel's zero-overhead tracer attachment."""

from repro.obs import Tracer
from repro.sim.kernel import Simulator


class TestDisabledPathIsFree:
    def test_untraced_step_bytecode_never_touches_tracer(self):
        """The class-level step/run must compile to the original hot loop:
        no tracer attribute lookups, no guard branches."""
        for method in (Simulator.step, Simulator.run):
            names = method.__code__.co_names
            assert "tracer" not in names
            assert "_tracer" not in names
            assert "emit" not in names

    def test_no_instance_override_when_disabled(self):
        sim = Simulator()
        assert "step" not in sim.__dict__
        assert "run" not in sim.__dict__
        sim.tracer = Tracer()
        assert "step" in sim.__dict__
        assert "run" in sim.__dict__
        sim.tracer = None
        assert "step" not in sim.__dict__
        assert "run" not in sim.__dict__


class TestTracedExecution:
    def _schedule_three(self, sim):
        fired = []
        for t in (1.0, 2.0, 3.0):
            sim.schedule_at(t, fired.append, t)
        return fired

    def test_run_emits_one_kernel_record_per_event(self):
        sim = Simulator()
        tracer = Tracer()
        sim.tracer = tracer
        fired = self._schedule_three(sim)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]
        events = tracer.filter(category="kernel", name="event")
        assert [r.time for r in events] == [1.0, 2.0, 3.0]
        assert all(r.component == "sim" for r in events)
        # the callback is identified well enough to grep a trace for it
        assert "append" in events[0].payload["callback"]

    def test_step_emits_and_cancelled_events_are_silent(self):
        sim = Simulator()
        tracer = Tracer()
        sim.tracer = tracer
        fired = self._schedule_three(sim)
        doomed = sim.schedule_at(1.5, fired.append, -1.0)
        doomed.cancel()
        while sim.step():
            pass
        assert fired == [1.0, 2.0, 3.0]
        assert len(tracer.filter(category="kernel")) == 3

    def test_detach_restores_untraced_behaviour(self):
        sim = Simulator()
        tracer = Tracer()
        sim.tracer = tracer
        sim.schedule_at(1.0, lambda: None)
        sim.run()
        assert len(tracer) == 1
        sim.tracer = None
        sim.schedule_at(2.0, lambda: None)
        sim.run()
        assert len(tracer) == 1  # nothing new recorded

    def test_traced_run_respects_until_and_max_events(self):
        sim = Simulator()
        sim.tracer = Tracer()
        fired = self._schedule_three(sim)
        sim.run(until=2.0)
        assert fired == [1.0, 2.0]
        assert sim.now == 2.0
        sim.run(max_events=1)
        assert fired == [1.0, 2.0, 3.0]
