"""Test package."""
