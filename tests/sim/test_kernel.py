"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.kernel import SimulationError, Simulator


def test_time_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_events_run_in_time_order():
    sim = Simulator()
    seen = []
    sim.schedule(30.0, seen.append, "c")
    sim.schedule(10.0, seen.append, "a")
    sim.schedule(20.0, seen.append, "b")
    sim.run()
    assert seen == ["a", "b", "c"]


def test_ties_break_by_insertion_order():
    sim = Simulator()
    seen = []
    for label in "abcde":
        sim.schedule(5.0, seen.append, label)
    sim.run()
    assert seen == list("abcde")


def test_now_reflects_event_time_inside_callback():
    sim = Simulator()
    observed = []
    sim.schedule(42.0, lambda: observed.append(sim.now))
    sim.run()
    assert observed == [42.0]


def test_events_can_schedule_more_events():
    sim = Simulator()
    seen = []

    def first():
        seen.append(("first", sim.now))
        sim.schedule(5.0, second)

    def second():
        seen.append(("second", sim.now))

    sim.schedule(10.0, first)
    sim.run()
    assert seen == [("first", 10.0), ("second", 15.0)]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    seen = []
    event = sim.schedule(10.0, seen.append, "x")
    sim.schedule(5.0, event.cancel)
    sim.run()
    assert seen == []


def test_cancel_is_idempotent():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    event.cancel()
    event.cancel()
    sim.run()


def test_run_until_advances_clock_even_without_events():
    sim = Simulator()
    sim.run(until=100.0)
    assert sim.now == 100.0


def test_run_until_does_not_execute_later_events():
    sim = Simulator()
    seen = []
    sim.schedule(50.0, seen.append, "early")
    sim.schedule(150.0, seen.append, "late")
    sim.run(until=100.0)
    assert seen == ["early"]
    assert sim.now == 100.0
    sim.run()
    assert seen == ["early", "late"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_at_in_the_past_rejected():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(5.0, lambda: None)


def test_step_returns_false_when_idle():
    sim = Simulator()
    assert sim.step() is False
    sim.schedule(1.0, lambda: None)
    assert sim.step() is True
    assert sim.step() is False


def test_peek_skips_cancelled():
    sim = Simulator()
    event = sim.schedule(5.0, lambda: None)
    sim.schedule(9.0, lambda: None)
    event.cancel()
    assert sim.peek() == 9.0


def test_pending_counts_live_events():
    sim = Simulator()
    e1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    e1.cancel()
    assert sim.pending() == 1


def test_max_events_limits_execution():
    sim = Simulator()
    seen = []
    for i in range(5):
        sim.schedule(float(i), seen.append, i)
    sim.run(max_events=3)
    assert seen == [0, 1, 2]


def test_events_executed_counter():
    sim = Simulator()
    for i in range(4):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_executed == 4


def test_not_reentrant():
    sim = Simulator()

    def nested():
        with pytest.raises(SimulationError):
            sim.run()

    sim.schedule(1.0, nested)
    sim.run()
