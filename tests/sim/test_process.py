"""Tests for generator-based processes and signals."""

import pytest

from repro.sim.kernel import Simulator
from repro.sim.process import Interrupted, Process, Signal, Timeout, spawn


def test_timeout_resumes_after_delay():
    sim = Simulator()
    trace = []

    def proc():
        trace.append(("start", sim.now))
        yield Timeout(25.0)
        trace.append(("resumed", sim.now))

    spawn(sim, proc())
    sim.run()
    assert trace == [("start", 0.0), ("resumed", 25.0)]


def test_process_result_and_finished_signal():
    sim = Simulator()

    def proc():
        yield Timeout(1.0)
        return 42

    p = spawn(sim, proc())
    results = []
    p.finished.subscribe(results.append)
    sim.run()
    assert p.done
    assert p.result == 42
    assert results == [42]


def test_signal_delivers_value():
    sim = Simulator()
    signal = Signal("go")
    got = []

    def waiter():
        value = yield signal
        got.append(value)

    spawn(sim, waiter())
    sim.schedule(10.0, signal.fire, "payload")
    sim.run()
    assert got == ["payload"]


def test_signal_wakes_all_current_waiters():
    sim = Simulator()
    signal = Signal()
    woken = []

    def waiter(name):
        yield signal
        woken.append(name)

    spawn(sim, waiter("a"))
    spawn(sim, waiter("b"))
    sim.schedule(1.0, signal.fire)
    sim.run()
    assert sorted(woken) == ["a", "b"]


def test_late_waiter_blocks_until_next_fire():
    sim = Simulator()
    signal = Signal()
    woken = []

    def late():
        yield Timeout(20.0)
        yield signal
        woken.append(sim.now)

    spawn(sim, late())
    sim.schedule(10.0, signal.fire)  # fires before the waiter waits
    sim.schedule(30.0, signal.fire)
    sim.run()
    assert woken == [30.0]


def test_interrupt_raises_inside_generator():
    sim = Simulator()
    outcome = []

    def proc():
        try:
            yield Timeout(100.0)
            outcome.append("completed")
        except Interrupted as exc:
            outcome.append(("interrupted", exc.cause, sim.now))

    p = spawn(sim, proc())
    sim.schedule(5.0, p.interrupt, "superseded")
    sim.run()
    assert outcome == [("interrupted", "superseded", 5.0)]
    assert p.done


def test_interrupt_cancels_pending_timeout():
    sim = Simulator()

    def proc():
        try:
            yield Timeout(100.0)
        except Interrupted:
            return "stopped"

    p = spawn(sim, proc())
    sim.schedule(1.0, p.interrupt)
    sim.run()
    assert p.result == "stopped"
    assert sim.now < 100.0


def test_interrupt_after_done_is_noop():
    sim = Simulator()

    def proc():
        yield Timeout(1.0)

    p = spawn(sim, proc())
    sim.run()
    assert p.done
    p.interrupt()
    sim.run()


def test_process_can_wait_on_another_process():
    sim = Simulator()
    order = []

    def worker():
        yield Timeout(10.0)
        order.append("worker done")
        return "product"

    def boss(w):
        result = yield w
        order.append(("boss got", result, sim.now))

    w = spawn(sim, worker())
    spawn(sim, boss(w))
    sim.run()
    assert order == ["worker done", ("boss got", "product", 10.0)]


def test_waiting_on_finished_process_resumes_immediately():
    sim = Simulator()
    got = []

    def worker():
        return "early"
        yield  # pragma: no cover - makes this a generator

    def boss(w):
        result = yield w
        got.append(result)

    w = spawn(sim, worker())
    sim.run()
    spawn(sim, boss(w))
    sim.run()
    assert got == ["early"]


def test_unsupported_yield_raises():
    sim = Simulator()

    def proc():
        yield "nonsense"

    spawn(sim, proc())
    with pytest.raises(TypeError):
        sim.run()


def test_negative_timeout_rejected():
    with pytest.raises(ValueError):
        Timeout(-1.0)


def test_signal_subscribe_and_unsubscribe():
    signal = Signal()
    seen = []
    signal.subscribe(seen.append)
    signal.fire(1)
    signal.unsubscribe(seen.append)
    signal.fire(2)
    assert seen == [1]
    assert signal.fire_count == 2
    assert signal.last_value == 2
