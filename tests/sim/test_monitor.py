"""Tests for measurement probes."""

import pytest

from repro.sim.monitor import Counter, ProbeSet, Tally, TimeSeries


class TestCounter:
    def test_increment(self):
        counter = Counter("c")
        counter.increment()
        counter.increment(4)
        assert counter.value == 5

    def test_reset(self):
        counter = Counter()
        counter.increment(3)
        counter.reset()
        assert counter.value == 0


class TestTally:
    def test_mean_and_extremes(self):
        tally = Tally()
        tally.extend([1.0, 2.0, 3.0, 4.0])
        assert tally.mean == pytest.approx(2.5)
        assert tally.minimum == 1.0
        assert tally.maximum == 4.0
        assert tally.count == 4
        assert tally.total == pytest.approx(10.0)

    def test_variance_and_stdev(self):
        tally = Tally()
        tally.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert tally.variance == pytest.approx(32.0 / 7.0)
        assert tally.stdev == pytest.approx((32.0 / 7.0) ** 0.5)

    def test_variance_of_single_sample_is_zero(self):
        tally = Tally()
        tally.record(5.0)
        assert tally.variance == 0.0

    def test_percentiles_nearest_rank(self):
        tally = Tally()
        tally.extend(float(i) for i in range(1, 101))
        assert tally.percentile(50) == 50.0
        assert tally.percentile(99) == 99.0
        assert tally.percentile(100) == 100.0
        assert tally.percentile(0) == 1.0

    def test_percentile_after_more_samples_recomputes(self):
        tally = Tally()
        tally.extend([1.0, 2.0, 3.0])
        assert tally.percentile(100) == 3.0
        tally.record(10.0)
        assert tally.percentile(100) == 10.0

    def test_empty_tally_raises(self):
        tally = Tally("empty")
        with pytest.raises(ValueError):
            tally.mean
        with pytest.raises(ValueError):
            tally.percentile(50)
        with pytest.raises(ValueError):
            tally.minimum

    def test_bad_percentile_rejected(self):
        tally = Tally()
        tally.record(1.0)
        with pytest.raises(ValueError):
            tally.percentile(101)


class TestTimeSeries:
    def test_points_and_maximum(self):
        series = TimeSeries()
        series.record(0.0, 1.0)
        series.record(10.0, 5.0)
        series.record(20.0, 2.0)
        assert series.maximum() == 5.0
        assert series.count == 3
        assert series.values() == [1.0, 5.0, 2.0]

    def test_time_average_weights_by_duration(self):
        series = TimeSeries()
        series.record(0.0, 0.0)
        series.record(10.0, 10.0)  # value 0 held for 10us
        series.record(20.0, 0.0)  # value 10 held for 10us
        assert series.time_average() == pytest.approx(5.0)

    def test_non_monotonic_time_rejected(self):
        series = TimeSeries()
        series.record(5.0, 1.0)
        with pytest.raises(ValueError):
            series.record(4.0, 1.0)

    def test_empty_maximum_raises(self):
        with pytest.raises(ValueError):
            TimeSeries().maximum()

    def test_time_average_needs_two_points(self):
        series = TimeSeries()
        series.record(0.0, 1.0)
        with pytest.raises(ValueError):
            series.time_average()


class TestProbeSet:
    def test_probes_are_cached_by_name(self):
        probes = ProbeSet()
        assert probes.counter("a") is probes.counter("a")
        assert probes.tally("b") is probes.tally("b")
        assert probes.time_series("c") is probes.time_series("c")
        assert probes.counter("a").name == "a"
