"""Tests for drifting clocks."""

import pytest

from repro.sim.clock import DriftingClock
from repro.sim.kernel import Simulator


def test_zero_drift_tracks_global_time():
    sim = Simulator()
    clock = DriftingClock(sim)
    sim.run(until=1000.0)
    assert clock.local_now() == pytest.approx(1000.0)
    assert clock.global_delay(500.0) == pytest.approx(500.0)


def test_positive_drift_runs_fast():
    sim = Simulator()
    clock = DriftingClock(sim, drift_ppm=100.0)
    sim.run(until=1_000_000.0)
    assert clock.local_now() == pytest.approx(1_000_100.0)


def test_negative_drift_runs_slow():
    sim = Simulator()
    clock = DriftingClock(sim, drift_ppm=-100.0)
    sim.run(until=1_000_000.0)
    assert clock.local_now() == pytest.approx(999_900.0)


def test_global_delay_inverse_of_local_delay():
    sim = Simulator()
    clock = DriftingClock(sim, drift_ppm=250.0)
    local = 12345.0
    assert clock.local_delay(clock.global_delay(local)) == pytest.approx(local)


def test_offset_applies():
    sim = Simulator()
    clock = DriftingClock(sim, offset=7.0)
    assert clock.local_now() == pytest.approx(7.0)


def test_a_fast_clock_waits_less_global_time():
    sim = Simulator()
    fast = DriftingClock(sim, drift_ppm=500.0)
    slow = DriftingClock(sim, drift_ppm=-500.0)
    # To wait one local second, the fast clock needs less global time.
    assert fast.global_delay(1e6) < 1e6 < slow.global_delay(1e6)


def test_negative_delays_rejected():
    sim = Simulator()
    clock = DriftingClock(sim)
    with pytest.raises(ValueError):
        clock.global_delay(-1.0)
    with pytest.raises(ValueError):
        clock.local_delay(-1.0)


def test_absurd_drift_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        DriftingClock(sim, drift_ppm=-2_000_000.0)


def test_set_drift_changes_rate_without_phase_jump():
    sim = Simulator()
    clock = DriftingClock(sim, drift_ppm=100.0)
    sim.run(until=1_000_000.0)
    before = clock.local_now()
    clock.set_drift(-300.0)
    # Continuity: the local clock does not jump at the step...
    assert clock.local_now() == pytest.approx(before)
    # ...but from here on it runs at the new rate.
    sim.run(until=2_000_000.0)
    assert clock.local_now() == pytest.approx(before + 1_000_000.0 - 300.0)
    assert clock.drift_ppm == -300.0


def test_set_drift_rejects_impossible_rate():
    sim = Simulator()
    clock = DriftingClock(sim)
    with pytest.raises(ValueError):
        clock.set_drift(-2_000_000.0)
