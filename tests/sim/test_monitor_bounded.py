"""Bounded-tally reservoir mode and probe edge cases."""

import pytest

from repro.sim.monitor import Counter, Gauge, ProbeSet, Tally, TimeSeries


class TestBoundedTally:
    def test_exact_until_reservoir_fills(self):
        tally = Tally(max_samples=10)
        values = [float(i) for i in range(10)]
        tally.extend(values)
        assert tally.bounded
        assert tally.samples() == values
        assert tally.percentile(50) == 4.0  # nearest-rank, exact
        assert tally.count == 10

    def test_aggregates_stay_exact_past_the_bound(self):
        bounded = Tally(max_samples=16)
        exact = Tally()
        values = [float((i * 37) % 1000) for i in range(5000)]
        bounded.extend(values)
        exact.extend(values)
        assert bounded.count == exact.count == 5000
        assert len(bounded.samples()) == 16
        assert bounded.total == pytest.approx(exact.total)
        assert bounded.mean == pytest.approx(exact.mean)
        assert bounded.variance == pytest.approx(exact.variance, rel=1e-9)
        assert bounded.minimum == exact.minimum
        assert bounded.maximum == exact.maximum

    def test_reservoir_is_deterministic(self):
        a = Tally(max_samples=8)
        b = Tally(max_samples=8)
        values = [float(i) for i in range(1000)]
        a.extend(values)
        b.extend(values)
        assert a.samples() == b.samples()

    def test_percentile_estimate_is_plausible(self):
        tally = Tally(max_samples=200)
        tally.extend(float(i) for i in range(10_000))
        # a uniform reservoir over 0..9999 puts the median well inside
        # the middle half of the range
        assert 2500 <= tally.percentile(50) <= 7500

    def test_percentile_cache_dropped_on_in_place_replacement(self):
        tally = Tally(max_samples=4)
        tally.extend([1.0, 2.0, 3.0, 4.0])
        assert tally.percentile(100) == 4.0  # populates the sorted cache
        # Keep feeding until a replacement lands in the reservoir; the
        # length stays 4 throughout, so only the explicit invalidation
        # in record() can keep percentile() honest.
        before = tally.samples()
        value = 1000.0
        while tally.samples() == before:
            tally.record(value)
            value += 1.0
        assert tally.percentile(100) == max(tally.samples())

    def test_reset_restores_empty_state(self):
        tally = Tally(max_samples=4)
        tally.extend([5.0, 6.0, 7.0])
        tally.reset()
        assert tally.count == 0
        assert tally.total == 0.0
        assert tally.snapshot() == {"count": 0}
        tally.record(2.0)
        assert tally.minimum == 2.0
        assert tally.maximum == 2.0

    def test_rejects_non_positive_bound(self):
        with pytest.raises(ValueError):
            Tally(max_samples=0)
        with pytest.raises(ValueError):
            Tally(max_samples=-5)

    def test_exact_mode_record_stays_bare_append(self):
        tally = Tally()
        tally.record(1.0)
        assert not tally.bounded
        # hot paths are allowed to append directly in exact mode
        tally._samples.append(2.0)
        assert tally.count == 2
        assert tally.percentile(100) == 2.0


class TestExactTallyEdges:
    def test_percentile_cache_invalidated_after_extend(self):
        tally = Tally()
        tally.extend([3.0, 1.0, 2.0])
        assert tally.percentile(50) == 2.0
        tally.extend([10.0, 11.0, 12.0, 13.0])
        assert tally.percentile(100) == 13.0
        assert tally.percentile(50) == 10.0

    def test_snapshot_empty_and_populated(self):
        tally = Tally()
        assert tally.snapshot() == {"count": 0}
        tally.extend([1.0, 2.0, 3.0, 4.0])
        snap = tally.snapshot()
        assert snap["count"] == 4
        assert snap["min"] == 1.0
        assert snap["max"] == 4.0
        assert snap["p50"] == 2.0


class TestTimeSeriesEdges:
    def test_time_average_single_segment(self):
        series = TimeSeries()
        series.record(0.0, 7.0)
        series.record(10.0, 99.0)  # final value is never held
        assert series.time_average() == pytest.approx(7.0)

    def test_time_average_zero_span(self):
        series = TimeSeries()
        series.record(5.0, 3.0)
        series.record(5.0, 8.0)
        assert series.time_average() == 3.0

    def test_reset_allows_earlier_times_again(self):
        series = TimeSeries()
        series.record(10.0, 1.0)
        series.reset()
        series.record(0.0, 2.0)  # would raise without the reset
        assert series.count == 1
        assert series.snapshot() == {"count": 1, "first_t": 0.0,
                                     "last_t": 0.0, "max": 2.0}


class TestCounterAndGauge:
    def test_counter_reset_after_use(self):
        counter = Counter("c")
        counter.increment(9)
        counter.reset()
        assert counter.value == 0
        counter.increment()
        assert counter.value == 1

    def test_gauge_reads_live_state(self):
        state = {"v": 1}
        gauge = Gauge("g", lambda: state["v"])
        assert gauge.value == 1
        state["v"] = 5
        assert gauge.value == 5

    def test_probeset_reset_leaves_gauges(self):
        probes = ProbeSet()
        probes.counter("hits").increment(3)
        probes.tally("lat").record(1.0)
        probes.time_series("occ").record(0.0, 2.0)
        probes.gauge("live", lambda: 11)
        probes.reset()
        snap = probes.snapshot()
        assert snap["counters"]["hits"] == 0
        assert snap["tallies"]["lat"] == {"count": 0}
        assert snap["series"]["occ"] == {"count": 0}
        assert snap["gauges"]["live"] == 11

    def test_bounded_tally_created_through_probeset(self):
        probes = ProbeSet()
        tally = probes.tally("lat", max_samples=4)
        assert tally.bounded
        # subsequent lookups return the same instance
        assert probes.tally("lat") is tally
