"""The pluggable loss-recovery layer: registry, runner wiring, the
do_nothing digest-neutrality contract, and the A6 acceptance comparison."""

from __future__ import annotations

import pytest

import repro.conform.digest as digest_mod
from repro.faults import CANNED, ScenarioRunner, build_corruption_burst
from repro.solutions import SOLUTIONS, make_solution
from repro.solutions.base import Solution, SolutionError
from repro.solutions.e2e_arq import EndToEndArq


def run_scenario(name, solution_name=None, **kwargs):
    net, plan, loads = CANNED[name].build()
    solution = make_solution(solution_name) if solution_name else None
    runner = ScenarioRunner(net, plan, loads, solution=solution, **kwargs)
    return runner.run(), net


class TestRegistry:
    def test_all_four_solutions_registered(self):
        assert sorted(SOLUTIONS) == [
            "disable_and_repair", "do_nothing", "e2e_arq", "link_retx",
        ]

    def test_make_solution_unknown_name(self):
        with pytest.raises(SolutionError):
            make_solution("no_such_solution")

    def test_make_solution_returns_fresh_instances(self):
        assert make_solution("do_nothing") is not make_solution("do_nothing")


class TestDigestNeutrality:
    def test_do_nothing_is_digest_identical_to_no_solution(self):
        """The baseline contract: attaching do_nothing must not change a
        single kernel event or a byte of final network state relative to
        a solution-less run of the same scenario."""

        def digest_of(solution_name):
            net, plan, loads = CANNED["flapping_link"].build()
            digest = digest_mod.RunDigest()
            net.sim.digest = digest
            solution = (
                make_solution(solution_name) if solution_name else None
            )
            result = ScenarioRunner(
                net, plan, loads, solution=solution
            ).run()
            net.sim.digest = None
            digest.absorb(
                "network-state", digest_mod.fingerprint_network(net)
            )
            return digest.hexdigest(), result

        plain, plain_result = digest_of(None)
        wrapped, wrapped_result = digest_of("do_nothing")
        assert plain == wrapped
        assert plain_result.passed and wrapped_result.passed
        assert wrapped_result.solution_name == "do_nothing"


class TestScenarioMatrix:
    @pytest.mark.parametrize("solution_name", sorted(SOLUTIONS))
    def test_corruption_burst_invariants_hold(self, solution_name):
        result, _ = run_scenario("corruption_burst", solution_name)
        assert result.passed, [
            r for r in result.invariants if not r.passed
        ]
        assert result.solution_name == solution_name
        assert result.settled_at_us is not None

    def test_link_retx_recovers_the_burst(self):
        result, net = run_scenario("corruption_burst", "link_retx")
        metrics = result.solution_metrics
        corrupted = sum(
            link.cells_corrupted for link in net.links.values()
        )
        assert corrupted > 0  # the scenario actually injected noise
        assert metrics["recovered"] > 0
        assert metrics["abandoned"] == 0
        # Every offered packet arrived: link-local recovery hid the
        # corruption from the hosts entirely.
        sent = sum(len(p) for p in result.sent.values())
        assert result.delivered == sent

    def test_disable_and_repair_runs_a_repair_cycle(self):
        result, _ = run_scenario("corruption_burst", "disable_and_repair")
        metrics = result.solution_metrics
        assert metrics["repairs_started"] >= 1
        assert metrics["repairs_completed"] == metrics["repairs_started"]
        assert metrics["epochs_consumed"] >= 2  # fail + restore


class TestAcceptance:
    def test_link_retx_beats_e2e_arq_on_e2e_retransmissions(self):
        """The A6 headline: sub-RTT link-local recovery must spend
        strictly fewer end-to-end retransmissions than go-back-N on the
        identical corruption burst."""
        retx_result, _ = run_scenario("corruption_burst", "link_retx")
        arq_result, _ = run_scenario("corruption_burst", "e2e_arq")
        retx = retx_result.solution_metrics.get("e2e_retransmissions", 0.0)
        arq = arq_result.solution_metrics["e2e_retransmissions"]
        assert arq > 0  # go-back-N actually paid for the corruption
        assert retx < arq
        assert arq_result.solution_metrics["transfers_done"] == 1


class TestRunnerWiring:
    def test_arq_without_ack_circuits_raises(self):
        net, plan, loads = build_corruption_burst()
        solution = EndToEndArq()
        solution.attach(net)
        with pytest.raises(SolutionError):
            solution.schedule_traffic(None, 0.0, [1])

    def test_solution_report_line(self):
        result, _ = run_scenario("corruption_burst", "do_nothing")
        assert "solution: do_nothing" in result.report()

    def test_base_solution_defaults_are_inert(self):
        class Probe(Solution):
            name = "probe"

        net, _, _ = CANNED["flapping_link"].build()
        solution = Probe()
        solution.attach(net)
        assert solution.schedule_traffic(None, 0.0, []) is False
        assert solution.metrics() == {}
        assert solution.invariants(net) == []
