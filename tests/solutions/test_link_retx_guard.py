"""Unit tests for the link-local retransmission guard on a bare link."""

from __future__ import annotations

import pytest

from repro._types import parse_node_id
from repro.net.cell import Cell
from repro.net.link import Link
from repro.net.node import Node
from repro.sim.kernel import Simulator
from repro.solutions.link_retx import LinkRetxGuard


class _Sink(Node):
    def __init__(self, sim, name):
        super().__init__(sim, parse_node_id(name), n_ports=1)
        self.received = []

    def on_cell(self, port, cell):
        self.received.append(cell.payload)


def make_link(sim, **kwargs):
    a = _Sink(sim, "h0")
    b = _Sink(sim, "h1")
    link = Link(sim, a.port(0), b.port(0), length_km=2.0, **kwargs)
    return a, b, link


def send(link, payloads, direction=0):
    for payload in payloads:
        link.transmit(direction, Cell(vc=0, payload=payload))


class TestRecovery:
    def test_corrupted_cell_recovered_in_order(self):
        """One corrupted cell mid-burst: the guard NACKs, resends, and
        the resequencer keeps strict FIFO delivery order."""
        sim = Simulator()
        _, b, link = make_link(sim)
        guard = LinkRetxGuard(link)
        hit = []

        def corrupt_once(cell):
            if cell.payload == "c2" and not hit:
                hit.append(cell.payload)
                return True
            return False

        link.drop_filter = corrupt_once
        send(link, ["c0", "c1", "c2", "c3", "c4"])
        sim.run()
        assert b.received == ["c0", "c1", "c2", "c3", "c4"]
        assert guard.nacks == 1
        assert guard.resends == 1
        assert guard.recovered == 1
        assert guard.abandoned == 0
        assert guard.occupancy() == 0  # everything settled

    def test_resend_budget_exhaustion_falls_back_to_loss(self):
        """A permanently-corrupting filter must end in loss after
        ``max_resends`` attempts, and the held-back cells must drain."""
        sim = Simulator()
        _, b, link = make_link(sim)
        guard = LinkRetxGuard(link, max_resends=2)
        link.drop_filter = lambda cell: cell.payload == "dead"
        send(link, ["a", "dead", "b", "c"])
        sim.run()
        assert b.received == ["a", "b", "c"]  # gap skipped, order kept
        assert guard.abandoned == 1
        assert guard.resends == 2  # budget fully spent first
        assert guard.recovered == 0
        assert guard.occupancy() == 0

    def test_dead_link_abandons_without_nack(self):
        """Reason "dead" is the reconfiguration layer's problem: the
        guard declares loss immediately instead of NACKing a dead wire."""
        sim = Simulator()
        _, b, link = make_link(sim)
        guard = LinkRetxGuard(link)
        send(link, ["x", "y"])
        link.fail()
        sim.run()
        assert b.received == []
        assert guard.nacks == 0
        assert guard.abandoned == 2

    def test_buffer_overflow_evicts_oldest_copy(self):
        """The retransmit buffer is bounded: overflowing it evicts the
        oldest copy, and a later NACK for that cell becomes a loss."""
        sim = Simulator()
        _, b, link = make_link(sim)
        guard = LinkRetxGuard(link, buffer_cells=2)
        link.drop_filter = lambda cell: cell.payload == "p0"
        send(link, ["p0", "p1", "p2", "p3", "p4"])
        sim.run()
        assert guard.buffer_overflows > 0
        assert "p0" not in b.received  # its copy was evicted
        assert b.received == ["p1", "p2", "p3", "p4"]
        assert guard.occupancy() == 0

    def test_duplicate_delivery_swallowed(self):
        """A copy of an already-settled sequence must not reach the
        port twice (resend raced the original through)."""
        sim = Simulator()
        _, b, link = make_link(sim)
        guard = LinkRetxGuard(link)
        send(link, ["q0"])
        sim.run()
        # Manually replay the settled cell: the guard must swallow it.
        cell = Cell(vc=0, payload="q0")
        cell_seq = 0
        guard._seq_of[0][cell.uid] = cell_seq
        assert guard._on_deliver(link, 0, cell) is True
        assert guard.duplicates == 1
        assert b.received == ["q0"]


class TestAttachment:
    def test_refuses_double_attachment(self):
        sim = Simulator()
        _, _, link = make_link(sim)
        LinkRetxGuard(link)
        with pytest.raises(ValueError):
            LinkRetxGuard(link)

    def test_detach_restores_plain_loss(self):
        sim = Simulator()
        _, b, link = make_link(sim)
        guard = LinkRetxGuard(link)
        guard.detach()
        link.drop_filter = lambda cell: cell.payload == "gone"
        send(link, ["gone", "kept"])
        sim.run()
        assert b.received == ["kept"]
        assert guard.nacks == 0  # no hooks fire after detach

    def test_validation(self):
        sim = Simulator()
        _, _, link = make_link(sim)
        with pytest.raises(ValueError):
            LinkRetxGuard(link, max_resends=0)
        with pytest.raises(ValueError):
            LinkRetxGuard(link, buffer_cells=0)

    def test_max_occupancy_tracks_in_flight_copies(self):
        sim = Simulator()
        _, _, link = make_link(sim)
        guard = LinkRetxGuard(link)
        send(link, [f"m{i}" for i in range(6)])
        sim.run()
        assert guard.max_occupancy == 6
        assert guard.occupancy() == 0
