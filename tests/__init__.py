"""Test package."""
